package orwl

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/numasim"
	"repro/internal/topology"
)

func simRuntime(t *testing.T, spec string, seed int64) *Runtime {
	t.Helper()
	top, err := topology.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := numasim.New(top, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(Options{Machine: mach, Seed: seed})
}

// ringProgram builds n tasks passing values around a ring of locations:
// task i reads location (i-1+n)%n and writes location i. The body follows
// the canonical ORWL iterative pattern — acquire the read, copy in, release
// it, then acquire the write — so the cyclic data dependency never becomes
// a cyclic wait (holding the read while waiting for the write would
// deadlock the ring). Readers are rank 0: at iteration 0 every task reads
// the initial location contents, Jacobi-style, so after K iterations every
// location holds exactly K.
func ringProgram(rt *Runtime, n, iters int, size int64) []*Location {
	locs := make([]*Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation(fmt.Sprintf("ring%d", i), size)
		locs[i].SetData([]float64{0})
	}
	for i := 0; i < n; i++ {
		task := rt.AddTask(fmt.Sprintf("t%d", i), func(task *Task) error {
			r, w := task.Handle(0), task.Handle(1)
			for it := 0; it < iters; it++ {
				last := it == iters-1
				if err := r.Acquire(); err != nil {
					return err
				}
				in, err := r.Float64s()
				if err != nil {
					return err
				}
				v := in[0]
				if err := releaseOrNext(r, last); err != nil {
					return err
				}
				if err := w.Acquire(); err != nil {
					return err
				}
				out, err := w.Float64s()
				if err != nil {
					return err
				}
				out[0] = v + 1
				// Each iteration also sweeps the task's own working set,
				// the dominant cost of real iterative kernels.
				if p := task.Proc(); p != nil {
					p.SweepWorkingSet(w.Location().Region(), w.Location().Size())
				}
				task.EndIteration()
				if err := releaseOrNext(w, last); err != nil {
					return err
				}
			}
			return nil
		})
		task.NewHandleVol(locs[(i-1+n)%n], Read, 8, 0)
		task.NewHandleVol(locs[i], Write, 8, 1)
	}
	return locs
}

// releaseOrNext releases the handle at the end of the final iteration and
// re-requests it otherwise.
func releaseOrNext(h *Handle, last bool) error {
	if last {
		return h.Release()
	}
	return h.ReleaseAndRequest()
}

func TestRingProgramNoMachine(t *testing.T) {
	rt := buildRuntime()
	locs := ringProgram(rt, 4, 10, 8)
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Jacobi-style propagation from an all-zero ring: after K iterations
	// every location holds exactly K.
	for i, l := range locs {
		if v := l.data.([]float64)[0]; v != 10 {
			t.Errorf("location %d final value %v, want 10", i, v)
		}
	}
	if rt.WallTime() <= 0 {
		t.Errorf("WallTime = %v", rt.WallTime())
	}
}

func TestRunTwiceFails(t *testing.T) {
	rt := buildRuntime()
	ringProgram(rt, 2, 1, 8)
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rt.Run(); err == nil {
		t.Errorf("second Run succeeded")
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	rt := buildRuntime()
	boom := errors.New("boom")
	rt.AddTask("bad", func(*Task) error { return boom })
	rt.AddTask("good", func(*Task) error { return nil })
	err := rt.Run()
	if !errors.Is(err, boom) {
		t.Errorf("Run error = %v, want wrapped boom", err)
	}
}

func TestLeakedAcquireReported(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	task := rt.AddTask("leaky", func(task *Task) error {
		return task.Handle(0).Acquire() // never released
	})
	task.NewHandle(loc, Write)
	err := rt.Run()
	if err == nil || !strings.Contains(err.Error(), "still acquired") {
		t.Errorf("leak not reported: %v", err)
	}
}

func TestLeftoverRequestDrained(t *testing.T) {
	// A task that ends with ReleaseAndRequest leaves a queued request; Run
	// must drain it silently.
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	task := rt.AddTask("t", func(task *Task) error {
		h := task.Handle(0)
		if err := h.Acquire(); err != nil {
			return err
		}
		return h.ReleaseAndRequest()
	})
	task.NewHandle(loc, Write)
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if loc.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", loc.QueueLen())
	}
}

func TestBindValidation(t *testing.T) {
	rt := simRuntime(t, "pack:2 core:2 pu:1", 1)
	task := rt.AddTask("t", func(task *Task) error { return nil })
	if err := rt.Bind(task, 99); err == nil {
		t.Errorf("out-of-range bind accepted")
	}
	if err := rt.Bind(task, 3); err != nil {
		t.Errorf("valid bind rejected: %v", err)
	}
	if err := rt.BindControl(task, 99); err == nil {
		t.Errorf("out-of-range control bind accepted")
	}
	if err := rt.BindControl(task, 2); err != nil {
		t.Errorf("valid control bind rejected: %v", err)
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rt.Bind(task, 0); err == nil {
		t.Errorf("bind after Run accepted")
	}
	if err := rt.BindControl(task, 0); err == nil {
		t.Errorf("control bind after Run accepted")
	}
}

func TestSimulatedTimeDeterministic(t *testing.T) {
	run := func() float64 {
		rt := simRuntime(t, "pack:2 core:4 pu:1", 42)
		ringProgram(rt, 8, 20, 8)
		for i, task := range rt.Tasks() {
			if err := rt.Bind(task, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("bound simulated makespan not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Errorf("makespan = %v", a)
	}
}

func TestUnboundSimDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) float64 {
		rt := simRuntime(t, "pack:2 core:4 pu:1", seed)
		ringProgram(rt, 8, 20, 8)
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	if a, b := run(7), run(7); a != b {
		t.Errorf("unbound makespan differs for equal seeds: %v vs %v", a, b)
	}
}

func TestBindingBeatsUnbound(t *testing.T) {
	// The paper's Bind-vs-NoBind effect in miniature: bound tasks first-touch
	// their working set locally and keep their caches warm; unbound tasks are
	// migrated by the simulated OS, turning their sweeps remote and cold.
	makespan := func(bind bool) float64 {
		rt := simRuntime(t, "pack:4 l3:1 core:4 pu:1", 3)
		ringProgram(rt, 16, 30, 256<<10)
		if bind {
			for i, task := range rt.Tasks() {
				if err := rt.Bind(task, i); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	bound := makespan(true)
	unbound := makespan(false)
	if bound >= unbound {
		t.Errorf("bound makespan %v not below unbound %v", bound, unbound)
	}
	// Migrations must actually have happened in the unbound run for the
	// comparison to be meaningful; with 16 tasks × 30 iterations at
	// probability 0.25 the expected count is ~120, so >0 is a safe bet.
	rt := simRuntime(t, "pack:4 l3:1 core:4 pu:1", 3)
	ringProgram(rt, 16, 30, 256<<10)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	migrations := 0
	for _, task := range rt.Tasks() {
		migrations += task.Proc().Stats().Migrations
	}
	if migrations == 0 {
		t.Errorf("no migrations in the unbound run")
	}
}

func TestControlThreadDistanceCosts(t *testing.T) {
	// Same program, control threads at increasing distances: co-hyperthread
	// must beat same-node, which must beat unmapped.
	makespan := func(ctl func(taskPU int) int) float64 {
		rt := simRuntime(t, "pack:2 l3:1 core:4 pu:2", 5)
		ringProgram(rt, 8, 30, 8)
		for i, task := range rt.Tasks() {
			pu := i * 2 // even PUs: first hyperthread of each core
			if err := rt.Bind(task, pu); err != nil {
				t.Fatal(err)
			}
			if c := ctl(pu); c >= -1 {
				if err := rt.BindControl(task, c); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	hyper := makespan(func(pu int) int { return pu + 1 }) // co-hyperthread
	unmapped := makespan(func(pu int) int { return -1 })  // OS
	if hyper >= unmapped {
		t.Errorf("co-hyperthread control %v not faster than unmapped %v", hyper, unmapped)
	}
}

func TestCommMatrixExtraction(t *testing.T) {
	rt := buildRuntime()
	ringProgram(rt, 4, 1, 8)
	m := rt.CommMatrix()
	if m.Order() != 4 {
		t.Fatalf("order = %d", m.Order())
	}
	if !m.IsSymmetric() {
		t.Errorf("affinity matrix not symmetric")
	}
	// Ring neighbours communicate 8 bytes; non-neighbours nothing.
	for i := 0; i < 4; i++ {
		next := (i + 1) % 4
		if got := m.At(i, next); got != 8 {
			t.Errorf("affinity(%d,%d) = %v, want 8", i, next, got)
		}
		opposite := (i + 2) % 4
		if got := m.At(i, opposite); got != 0 {
			t.Errorf("affinity(%d,%d) = %v, want 0", i, opposite, got)
		}
	}
	if m.Label(2) != "t2" {
		t.Errorf("label = %q", m.Label(2))
	}
}

func TestCommMatrixModes(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("shared", 100)
	w1 := rt.AddTask("w1", nil)
	w2 := rt.AddTask("w2", nil)
	r1 := rt.AddTask("r1", nil)
	r2 := rt.AddTask("r2", nil)
	w1.NewHandleVol(loc, Write, 100, 0)
	w2.NewHandleVol(loc, Write, 40, 0)
	r1.NewHandleVol(loc, Read, 100, 0)
	r2.NewHandleVol(loc, Read, 100, 0)
	m := rt.CommMatrix()
	// writer-writer: min(100,40) = 40.
	if got := m.At(0, 1); got != 40 {
		t.Errorf("w-w volume = %v, want 40", got)
	}
	// writer-reader: min volumes.
	if got := m.At(0, 2); got != 100 {
		t.Errorf("w-r volume = %v, want 100", got)
	}
	if got := m.At(1, 3); got != 40 {
		t.Errorf("w2-r2 volume = %v, want 40", got)
	}
	// reader-reader: no data exchanged.
	if got := m.At(2, 3); got != 0 {
		t.Errorf("r-r volume = %v, want 0", got)
	}
}

func TestTraceHook(t *testing.T) {
	var events []TraceEvent
	rt := NewRuntime(Options{Trace: func(e TraceEvent) { events = append(events, e) }})
	loc := rt.NewLocation("x", 8)
	task := rt.AddTask("t", func(task *Task) error {
		h := task.Handle(0)
		if err := h.Acquire(); err != nil {
			return err
		}
		return h.Release()
	})
	task.NewHandle(loc, Write)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Op != "acquire" || events[1].Op != "release" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Task.Name() != "t" || events[0].Location.Name() != "x" {
		t.Errorf("event fields wrong: %+v", events[0])
	}
}

func TestLocationOnExplicitNode(t *testing.T) {
	rt := simRuntime(t, "pack:2 core:2 pu:1", 1)
	loc, err := rt.NewLocationOn("x", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Region().Home() != 1 {
		t.Errorf("home = %d, want 1", loc.Region().Home())
	}
	if _, err := rt.NewLocationOn("bad", 64, 99); err == nil {
		t.Errorf("bad node accepted")
	}
}

func TestFirstTouchLocationPlacement(t *testing.T) {
	rt := simRuntime(t, "pack:2 core:2 pu:1", 1)
	loc := rt.NewLocation("x", 64)
	loc.SetData([]float64{0})
	task := rt.AddTask("t", func(task *Task) error {
		h := task.Handle(0)
		if err := h.Acquire(); err != nil {
			return err
		}
		return h.Release()
	})
	task.NewHandle(loc, Write)
	if err := rt.Bind(task, 3); err != nil { // PU 3 lives on node 1
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := loc.Region().Home(); got != 1 {
		t.Errorf("first-touch home = %d, want 1 (node of PU 3)", got)
	}
}

func TestMakespanWithoutMachine(t *testing.T) {
	rt := buildRuntime()
	ringProgram(rt, 2, 2, 8)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.MakespanSeconds() != 0 || rt.MakespanCycles() != 0 {
		t.Errorf("machine-less makespan non-zero")
	}
}
