package main

import (
	"strings"
	"testing"
)

func TestRunSpecValidation(t *testing.T) {
	tests := []struct {
		name    string
		spec    string
		wantErr string
	}{
		{"paper machine", "pack:24 l3:1 core:8 pu:1", ""},
		{"cluster spec", "node:4 pack:2 core:8", ""},
		{"empty spec", "", "empty spec"},
		{"bad token", "pack=24", "not of the form"},
		{"unknown kind", "bogus:2", "unknown object kind"},
		{"bad count", "pack:zero", "invalid count"},
		{"out of order", "core:8 pack:24", "root-to-leaf order"},
		{"duplicate kind", "pack:2 pack:2", "appears twice"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.spec, false, &b)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid spec, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRunGoldenOutput(t *testing.T) {
	var b strings.Builder
	if err := run("pack:2 l3:1 core:2 pu:1", true, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Machine (2 Package, 2 NUMANode, 2 L3, 4 Core, 4 PU)",
		"normalized spec: pack:2 numa:1 l3:1 core:2 pu:1",
		"NUMA distances (SLIT style, local = 10):",
		"  10  30",
		"  30  10",
		"PU-to-PU latency (cycles):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunClusterOutput(t *testing.T) {
	var b strings.Builder
	if err := run("node:2 pack:1 core:2", false, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 Cluster",
		"normalized spec: cluster:2 pack:1 numa:1 core:2 pu:1",
		"Cluster#0 (link",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunLatencySuppressedOnLargeMachines(t *testing.T) {
	var b strings.Builder
	if err := run("pack:24 l3:1 core:8 pu:1", true, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "latency matrix suppressed") {
		t.Error("large machine should suppress the latency matrix")
	}
}
