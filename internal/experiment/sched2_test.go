package experiment

import (
	"strings"
	"testing"
)

// TestAblationSched2Ordering is the A16 acceptance property: on every cell
// of the default shape × seed grid, the full policy stack (backfill +
// preemption + defragmentation) strictly beats backfill-only on aggregate
// job cycle time, and backfill-only strictly beats plain FIFO.
func TestAblationSched2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell scheduler grid in -short mode")
	}
	cfg := Sched2Config{}.withDefaults()
	if len(cfg.Shapes) < 2 || len(cfg.Seeds) < 2 {
		t.Fatalf("default grid %dx%d, want at least 2 shapes x 2 seeds", len(cfg.Shapes), len(cfg.Seeds))
	}
	for _, shape := range cfg.Shapes {
		for _, seed := range cfg.Seeds {
			agg := map[string]float64{}
			for _, mode := range Sched2Modes() {
				rep, err := RunSched2Cell(mode, shape, seed, cfg)
				if err != nil {
					t.Fatalf("%s shape %q seed %d: %v", mode, shape, seed, err)
				}
				if rep.Admitted == 0 {
					t.Fatalf("%s shape %q seed %d: no jobs admitted", mode, shape, seed)
				}
				agg[mode] = rep.AggregateCycles
			}
			if !(agg["full"] < agg["backfill"]) {
				t.Errorf("shape %q seed %d: full %.0f not strictly below backfill %.0f",
					shape, seed, agg["full"], agg["backfill"])
			}
			if !(agg["backfill"] < agg["fifo"]) {
				t.Errorf("shape %q seed %d: backfill %.0f not strictly below fifo %.0f",
					shape, seed, agg["backfill"], agg["fifo"])
			}
		}
	}
}

// TestAblationSched2Rows: the ablation rows carry the registered orderings,
// positive times, the grid size in the detail, every phase-2 policy actually
// fires somewhere on the grid in its arm, and the full arm leaves the free
// capacity less fragmented than FIFO (defragmentation earns its name).
func TestAblationSched2Rows(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell scheduler grid in -short mode")
	}
	rows, err := AblationSched2(Sched2Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Sched2Modes()) {
		t.Fatalf("%d rows, want %d", len(rows), len(Sched2Modes()))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s has non-positive aggregate time %v", r.Name, r.Seconds)
		}
		if !strings.Contains(r.Detail, "cells=4") {
			t.Errorf("%s detail %q does not report the 2x2 grid", r.Name, r.Detail)
		}
		if !strings.Contains(r.Detail, "backfills=") || !strings.Contains(r.Detail, "preempts=") ||
			!strings.Contains(r.Detail, "defrags=") {
			t.Errorf("%s detail %q misses the policy-activity counters", r.Name, r.Detail)
		}
	}
	if err := CheckOrderings(rows, AblationOrderings("sched2")); err != nil {
		t.Errorf("registered sched2 orderings violated: %v", err)
	}

	full, err := RunSched2("full", Sched2Config{})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := RunSched2("backfill", Sched2Config{})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := RunSched2("fifo", Sched2Config{})
	if err != nil {
		t.Fatal(err)
	}
	// An arm whose headline policy never fires is not an ablation of that
	// policy — the grid must exercise all three.
	if full.Backfills == 0 || full.Preemptions == 0 || full.DefragMigrations == 0 {
		t.Errorf("full arm policy activity backfills=%d preempts=%d defrags=%d, want all > 0",
			full.Backfills, full.Preemptions, full.DefragMigrations)
	}
	if bf.Backfills == 0 {
		t.Errorf("backfill arm never backfilled")
	}
	if bf.Preemptions != 0 || bf.DefragMigrations != 0 || fifo.Backfills != 0 ||
		fifo.Preemptions != 0 || fifo.DefragMigrations != 0 {
		t.Errorf("disabled policies fired: backfill arm pre=%d df=%d, fifo arm bf=%d pre=%d df=%d",
			bf.Preemptions, bf.DefragMigrations, fifo.Backfills, fifo.Preemptions, fifo.DefragMigrations)
	}
	if !(full.FragmentationAvg < fifo.FragmentationAvg) {
		t.Errorf("full frag %.3f not below fifo %.3f", full.FragmentationAvg, fifo.FragmentationAvg)
	}
}

// TestSched2ConfigValidate rejects broken grids before any cell runs.
func TestSched2ConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Sched2Config
		want string
	}{
		{"bad shape", Sched2Config{Shapes: []string{"nonsense"}}, "shape"},
		{"bad tier", Sched2Config{RequiredTier: "closet"}, "tier"},
		{"negative churn", Sched2Config{Churn: -1}, "churn"},
		{"threshold above one", Sched2Config{DefragThreshold: 1.5}, "threshold"},
		{"bad long fraction", Sched2Config{LongFraction: 2}, "long fraction"},
		{"bad mode reaches RunSched2", Sched2Config{}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.want == "" {
				if _, err := RunSched2("greedy", tc.cfg); err == nil ||
					!strings.Contains(err.Error(), "unknown sched2 mode") {
					t.Fatalf("unknown mode error = %v", err)
				}
				return
			}
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
