package comm

import (
	"math"
	"testing"
)

// testMatrices returns dense/sparse pairs with identical entries, covering
// the generator shapes the partitioners consume.
func testMatrices(t *testing.T) map[string]*Matrix {
	t.Helper()
	return map[string]*Matrix{
		"stencil8x8":  Stencil2D(8, 8, 64, 8),
		"stencil5x3":  Stencil2D(5, 3, 100, 10),
		"ring17":      Ring(17, 3),
		"alltoall9":   AllToAll(9, 2),
		"random64":    Random(64, 0.1, 1000, 42),
		"lk23":        LK23OpLevel(3, 3, 16, 16, 8),
		"empty":       New(12),
		"asymmetric":  func() *Matrix { m := New(6); m.Set(0, 3, 5); m.Set(3, 0, 2); m.Set(5, 1, 7); return m }(),
		"zeroorder":   New(0),
		"singleentry": New(1),
	}
}

func TestSparseRoundTrip(t *testing.T) {
	for name, d := range testMatrices(t) {
		s := d.ToSparse()
		if !s.IsSparse() {
			t.Fatalf("%s: ToSparse not sparse", name)
		}
		if d.IsSparse() {
			t.Fatalf("%s: dense original claims sparse", name)
		}
		back := s.ToDense()
		if !d.Equal(back, 0) {
			t.Errorf("%s: dense→sparse→dense round trip changed entries", name)
		}
		if !d.Equal(s, 0) {
			t.Errorf("%s: cross-mode Equal failed", name)
		}
		for i := 0; i < d.Order(); i++ {
			for j := 0; j < d.Order(); j++ {
				if d.At(i, j) != s.At(i, j) {
					t.Fatalf("%s: At(%d,%d) dense %v sparse %v", name, i, j, d.At(i, j), s.At(i, j))
				}
			}
		}
	}
}

func TestSparseIterationMatchesDense(t *testing.T) {
	for name, d := range testMatrices(t) {
		s := d.ToSparse()
		if got, want := s.NNZ(), d.NNZ(); got != want {
			t.Errorf("%s: NNZ sparse %d dense %d", name, got, want)
		}
		for i := 0; i < d.Order(); i++ {
			if got, want := s.RowNNZ(i), d.RowNNZ(i); got != want {
				t.Errorf("%s: RowNNZ(%d) sparse %d dense %d", name, i, got, want)
			}
			type ent struct {
				j int
				v float64
			}
			var dseq, sseq []ent
			d.ForEachNeighbor(i, func(j int, v float64) { dseq = append(dseq, ent{j, v}) })
			s.ForEachNeighbor(i, func(j int, v float64) { sseq = append(sseq, ent{j, v}) })
			if len(dseq) != len(sseq) {
				t.Fatalf("%s row %d: neighbor count dense %d sparse %d", name, i, len(dseq), len(sseq))
			}
			for p := range dseq {
				if dseq[p] != sseq[p] {
					t.Fatalf("%s row %d pos %d: dense %+v sparse %+v", name, i, p, dseq[p], sseq[p])
				}
			}
		}
	}
}

func TestSparseAccumulationsBitEqual(t *testing.T) {
	for name, d := range testMatrices(t) {
		s := d.ToSparse()
		if got, want := s.TotalVolume(), d.TotalVolume(); got != want {
			t.Errorf("%s: TotalVolume sparse %v dense %v", name, got, want)
		}
		for i := 0; i < d.Order(); i++ {
			if got, want := s.RowVolume(i), d.RowVolume(i); got != want {
				t.Errorf("%s: RowVolume(%d) sparse %v dense %v", name, i, got, want)
			}
		}
		if got, want := s.MaxEntry(), d.MaxEntry(); got != want {
			t.Errorf("%s: MaxEntry sparse %v dense %v", name, got, want)
		}
		if got, want := s.IsSymmetric(), d.IsSymmetric(); got != want {
			t.Errorf("%s: IsSymmetric sparse %v dense %v", name, got, want)
		}
	}
}

func TestSparseAggregateBitEqual(t *testing.T) {
	d := Stencil2D(8, 8, 64, 8)
	s := d.ToSparse()
	groups := make([][]int, 16)
	for i := 0; i < 64; i++ {
		g := i / 4
		groups[g] = append(groups[g], i)
	}
	da, err := d.Aggregate(groups)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := s.Aggregate(groups)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.IsSparse() {
		t.Fatal("sparse aggregate should stay sparse")
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if da.At(i, j) != sa.At(i, j) {
				t.Fatalf("aggregate (%d,%d): dense %v sparse %v", i, j, da.At(i, j), sa.At(i, j))
			}
		}
	}
}

func TestSparseSubmatrixExtendSymmetrize(t *testing.T) {
	d := Random(40, 0.3, 500, 7)
	d.Set(3, 9, 123) // break symmetry for Symmetrize coverage
	s := d.ToSparse()

	ids := []int{5, 0, 17, 33, 12, 39, 2}
	dsub, err := d.Submatrix(ids)
	if err != nil {
		t.Fatal(err)
	}
	ssub, err := s.Submatrix(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !ssub.IsSparse() {
		t.Fatal("sparse submatrix should stay sparse")
	}
	if !dsub.Equal(ssub, 0) {
		t.Error("submatrix differs across modes")
	}

	dx, err := d.ExtendZero(50)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := s.ExtendZero(50)
	if err != nil {
		t.Fatal(err)
	}
	if !sx.IsSparse() {
		t.Fatal("sparse extend should stay sparse")
	}
	if !dx.Equal(sx, 0) {
		t.Error("extend differs across modes")
	}
	for i := 0; i < 50; i++ {
		if dx.Label(i) != sx.Label(i) {
			t.Fatalf("extend label %d: dense %q sparse %q", i, dx.Label(i), sx.Label(i))
		}
	}

	dsym := d.Clone().Symmetrize()
	ssym := s.Clone().Symmetrize()
	if !ssym.IsSymmetric() {
		t.Error("sparse Symmetrize left an asymmetric matrix")
	}
	if !dsym.Equal(ssym, 0) {
		t.Error("symmetrize differs across modes")
	}

	dscaled := d.Clone().Scale(0.25)
	sscaled := s.Clone().Scale(0.25)
	if !dscaled.Equal(sscaled, 0) {
		t.Error("scale differs across modes")
	}
}

func TestSparseGenerators(t *testing.T) {
	d := Stencil2D(7, 5, 64, 8)
	s := Stencil2DSparse(7, 5, 64, 8)
	if !s.IsSparse() {
		t.Fatal("Stencil2DSparse not sparse")
	}
	if !d.Equal(s, 0) {
		t.Error("Stencil2DSparse entries differ from Stencil2D")
	}
	for i := 0; i < d.Order(); i++ {
		if d.Label(i) != s.Label(i) {
			t.Fatalf("label %d: dense %q sparse %q", i, d.Label(i), s.Label(i))
		}
	}

	r := RandomSparse(1000, 4, 100, 11)
	if !r.IsSparse() {
		t.Fatal("RandomSparse not sparse")
	}
	if !r.IsSymmetric() {
		t.Error("RandomSparse not symmetric")
	}
	r2 := RandomSparse(1000, 4, 100, 11)
	if !r.Equal(r2, 0) {
		t.Error("RandomSparse not deterministic for a fixed seed")
	}
	// Bounded degree: nnz is O(n·degree), nowhere near n².
	if nnz := r.NNZ(); nnz == 0 || nnz > 1000*4*2 {
		t.Errorf("RandomSparse nnz %d outside expected bound", nnz)
	}
}

func TestSparseSetAddSemantics(t *testing.T) {
	s := NewSparse(5)
	s.Set(1, 2, 0) // setting an absent entry to zero must not materialize it
	if s.NNZ() != 0 {
		t.Errorf("Set(.,.,0) materialized an entry: nnz=%d", s.NNZ())
	}
	s.Add(1, 2, 3)
	s.Add(1, 2, -3) // stored zero: invisible to iteration
	if got := s.At(1, 2); got != 0 {
		t.Errorf("At after cancelling adds = %v", got)
	}
	count := 0
	s.ForEachNeighbor(1, func(int, float64) { count++ })
	if count != 0 {
		t.Errorf("ForEachNeighbor visited %d cancelled entries", count)
	}
	if s.RowNNZ(1) != 0 || s.NNZ() != 0 {
		t.Errorf("cancelled entry counted: rownnz=%d nnz=%d", s.RowNNZ(1), s.NNZ())
	}
	s.AddSym(0, 4, 2.5)
	if s.At(0, 4) != 2.5 || s.At(4, 0) != 2.5 {
		t.Error("AddSym did not mirror")
	}
	if math.Abs(s.TotalVolume()-5) > 0 {
		t.Errorf("TotalVolume = %v, want 5", s.TotalVolume())
	}
}
