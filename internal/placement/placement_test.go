package placement

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/kernels"
	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/topology"
	"repro/internal/treematch"
)

func machine(t *testing.T, spec string) *numasim.Machine {
	t.Helper()
	top, err := topology.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := numasim.New(top, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{TreeMatch{}, "treematch"},
		{Compact{}, "compact"},
		{Scatter{}, "scatter"},
		{Random{}, "random"},
		{NoBind{}, "nobind"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

func TestPoliciesRequireMachine(t *testing.T) {
	m := comm.Ring(4, 1)
	for _, p := range []Policy{TreeMatch{}, Compact{}, Scatter{}, Random{}} {
		if _, err := p.Assign(nil, m); err == nil {
			t.Errorf("%s accepted nil machine", p.Name())
		}
	}
	// NoBind works without a machine.
	if _, err := (NoBind{}).Assign(nil, m); err != nil {
		t.Errorf("nobind: %v", err)
	}
}

func TestTreeMatchAssignClustersStencil(t *testing.T) {
	mach := machine(t, "pack:4 l3:1 core:4 pu:1")
	m := comm.Stencil2D(4, 4, 1000, 10)
	a, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualArity != 1 {
		t.Errorf("VirtualArity = %d", a.VirtualArity)
	}
	// All PUs distinct and in range.
	seen := map[int]bool{}
	topo := mach.Topology()
	for i, pu := range a.TaskPU {
		if pu < 0 || pu >= topo.NumPUs() || seen[pu] {
			t.Fatalf("TaskPU[%d] = %d invalid or reused", i, pu)
		}
		seen[pu] = true
	}
	// Count inter-socket stencil volume: TreeMatch must keep most of the
	// volume inside sockets (16 blocks on 4 sockets: optimal tiling cuts
	// well under half the total).
	var cut, total float64
	for i := 0; i < m.Order(); i++ {
		for j := 0; j < m.Order(); j++ {
			if i == j {
				continue
			}
			total += m.At(i, j)
			if !topo.SameNUMANode(topo.PU(a.TaskPU[i]), topo.PU(a.TaskPU[j])) {
				cut += m.At(i, j)
			}
		}
	}
	if cut > total/2 {
		t.Errorf("treematch cut %v of %v inter-socket", cut, total)
	}
	// No SMT: control threads cannot be hyperthread-paired and there are no
	// spare cores (16 tasks, 16 cores) -> unmapped.
	if a.Strategy != treematch.ControlUnmapped {
		t.Errorf("strategy = %v", a.Strategy)
	}
}

func TestTreeMatchHyperthreadControls(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:4 pu:2")
	m := comm.Ring(8, 100)
	a, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != treematch.ControlHyperthread {
		t.Fatalf("strategy = %v, want hyperthread", a.Strategy)
	}
	topo := mach.Topology()
	for i := range a.TaskPU {
		tp, cp := topo.PU(a.TaskPU[i]), topo.PU(a.ControlPU[i])
		if tp.Ancestor(topology.Core) != cp.Ancestor(topology.Core) {
			t.Errorf("task %d: control thread not on the co-hyperthread", i)
		}
		if a.TaskPU[i] == a.ControlPU[i] {
			t.Errorf("task %d: control thread on the same PU", i)
		}
	}
}

func TestTreeMatchSpareCoreControls(t *testing.T) {
	mach := machine(t, "pack:2 core:4 pu:1") // 8 cores, 4 tasks
	m := comm.Ring(4, 100)
	a, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != treematch.ControlSpareCores {
		t.Fatalf("strategy = %v, want spare-cores", a.Strategy)
	}
	used := map[int]bool{}
	for i := range a.TaskPU {
		if a.ControlPU[i] < 0 {
			t.Errorf("task %d control unmapped despite spare cores", i)
			continue
		}
		for _, pu := range []int{a.TaskPU[i], a.ControlPU[i]} {
			if used[pu] {
				t.Errorf("PU %d used twice", pu)
			}
			used[pu] = true
		}
	}
}

func TestBaselineShapes(t *testing.T) {
	mach := machine(t, "pack:4 core:4 pu:1") // 16 cores
	m := comm.Ring(16, 1)
	topo := mach.Topology()

	ca, err := Compact{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	// Compact: first 4 tasks on socket 0.
	for i := 0; i < 4; i++ {
		if got := mach.NodeOfPU(ca.TaskPU[i]); got != 0 {
			t.Errorf("compact task %d on node %d, want 0", i, got)
		}
	}
	sa, err := Scatter{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter: consecutive tasks on different sockets.
	for i := 0; i < 4; i++ {
		if got := mach.NodeOfPU(sa.TaskPU[i]); got != i {
			t.Errorf("scatter task %d on node %d, want %d", i, got, i)
		}
	}
	ra1, err := Random{Seed: 1}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	ra2, err := Random{Seed: 1}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra1.TaskPU {
		if ra1.TaskPU[i] != ra2.TaskPU[i] {
			t.Fatalf("random not deterministic per seed")
		}
		if ra1.TaskPU[i] < 0 || ra1.TaskPU[i] >= topo.NumPUs() {
			t.Fatalf("random PU out of range")
		}
	}
	na, err := NoBind{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range na.TaskPU {
		if na.TaskPU[i] != -1 || na.ControlPU[i] != -1 {
			t.Errorf("nobind bound something: %d/%d", na.TaskPU[i], na.ControlPU[i])
		}
	}
}

func TestOversubscriptionVirtualArity(t *testing.T) {
	mach := machine(t, "pack:2 core:2 pu:1") // 4 cores
	m := comm.Ring(9, 1)
	a, err := TreeMatch{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualArity != 3 {
		t.Errorf("treematch VirtualArity = %d, want 3", a.VirtualArity)
	}
	ca, _ := Compact{}.Assign(mach, m)
	if ca.VirtualArity != 3 {
		t.Errorf("compact VirtualArity = %d, want 3", ca.VirtualArity)
	}
}

func TestApplyAndPlace(t *testing.T) {
	mach := machine(t, "pack:2 l3:1 core:4 pu:1")
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: 1})
	g := kernels.NewGrid(8, 8, 3)
	prog, err := kernels.Build(rt, 8, 8, kernels.BuildOptions{
		BX: 2, BY: 2, Iters: 2, Costs: kernels.LK23Costs, Grid: g, Cell: g.Cell,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Place(rt, TreeMatch{})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if len(a.TaskPU) != len(prog.Tasks) {
		t.Fatalf("assignment order %d, tasks %d", len(a.TaskPU), len(prog.Tasks))
	}
	// 36 tasks on 8 cores: oversubscribed.
	if a.VirtualArity < 2 {
		t.Errorf("VirtualArity = %d, want oversubscription", a.VirtualArity)
	}
	// TreeMatch optimizes the hop-weighted communication volume, so the
	// structural property to check is the inter-socket cut: it must not
	// exceed the compact baseline's and must clearly beat scatter's.
	cm := rt.CommMatrix()
	cut := func(asg *Assignment) float64 {
		var s float64
		for i := 0; i < cm.Order(); i++ {
			for j := 0; j < cm.Order(); j++ {
				if i == j || cm.At(i, j) == 0 {
					continue
				}
				if mach.NodeOfPU(asg.TaskPU[i]) != mach.NodeOfPU(asg.TaskPU[j]) {
					s += cm.At(i, j)
				}
			}
		}
		return s
	}
	compact, err := Compact{}.Assign(mach, cm)
	if err != nil {
		t.Fatal(err)
	}
	scatter, err := Scatter{}.Assign(mach, cm)
	if err != nil {
		t.Fatal(err)
	}
	tmCut, coCut, scCut := cut(a), cut(compact), cut(scatter)
	if tmCut > coCut {
		t.Errorf("treematch cut %v above compact %v", tmCut, coCut)
	}
	if tmCut > scCut/2 {
		t.Errorf("treematch cut %v not well below scatter %v", tmCut, scCut)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := prog.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := kernels.RunJacobiLK23(g, 2); !res.Equal(want, 0) {
		t.Errorf("placed run changed the numerics")
	}
}

func TestApplyOrderMismatch(t *testing.T) {
	rt := orwl.NewRuntime(orwl.Options{})
	rt.AddTask("a", nil)
	a := unboundControls(3, "x")
	if err := Apply(rt, a); err == nil {
		t.Errorf("order mismatch accepted")
	}
}

func TestSetContention(t *testing.T) {
	mach := machine(t, "pack:4 core:4 pu:1")
	// 8 heavy bound tasks: uniform average pressure of 2 per node, no
	// fabric crossings.
	a := unboundControls(8, "x")
	for i := 0; i < 8; i++ {
		a.TaskPU[i] = i
	}
	SetContention(mach, a, nil)
	for n := 0; n < 4; n++ {
		if got := mach.Accessors(n); got != 2 {
			t.Errorf("node %d accessors = %d, want 2", n, got)
		}
	}
	if mach.RemoteStreams() != 0 {
		t.Errorf("bound layout has remote streams: %d", mach.RemoteStreams())
	}

	// All unbound: same average pressure plus remote streams.
	mach.ResetAccessors()
	nb := unboundControls(8, "x")
	for i := range nb.TaskPU {
		nb.TaskPU[i] = -1
	}
	SetContention(mach, nb, nil)
	if got := mach.Accessors(0); got != 2 {
		t.Errorf("unbound accessors = %d, want 2 (8 tasks / 4 nodes)", got)
	}
	if got := mach.RemoteStreams(); got != 6 {
		t.Errorf("remote streams = %d, want 6 (8 * 3/4)", got)
	}

	// heavy mask: only even tasks count -> 4 streams over 4 nodes.
	mach.ResetAccessors()
	heavy := make([]bool, 8)
	for i := 0; i < 8; i += 2 {
		heavy[i] = true
	}
	SetContention(mach, a, heavy)
	if got := mach.Accessors(0); got != 1 {
		t.Errorf("masked accessors = %d, want 1", got)
	}
}
