// Package comm represents the communication (affinity) matrices that drive
// topology-aware placement.
//
// Entry (i,j) of a matrix is the data volume, in bytes, exchanged between
// computing entities i and j over the lifetime of the application (or of one
// steady-state iteration; TreeMatch only cares about relative weights). The
// ORWL runtime extracts such a matrix automatically from the way tasks,
// handles and locations are composed (see internal/placement); this package
// also provides synthetic generators for the workloads used in the paper's
// evaluation and in tests.
//
// # The structural matrix is not the runtime's bill
//
// The extracted matrix is structural: it attributes a pairwise volume
// (essentially min of the handle volumes involved) to every pair of tasks
// that share a location. The simulator prices something subtly different:
// the B-location FIFO charges the full write-handle volume against the PU
// acquiring from the previous holder, and a location whose readers span
// several cluster nodes bounces the lock — and the data — across the fabric
// once per foreign node per iteration, a cost the pairwise matrix cannot
// express. Partitions therefore optimize a slightly different objective
// than the simulator prices: two placements with identical byte×hop cost
// can differ in makespan when one spreads a location's readers over more
// nodes (observed concretely on 8×8 stencils split four ways, where an
// equal-cut slab layout beats a lower-cut center-block layout). The
// measured epoch window (Window) narrows the gap — it records granted
// handoffs, not declarations — but per-pair attribution remains pairwise.
// Reconciling the two models is an open ROADMAP item ("Structural matrix vs
// runtime charges").
package comm

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a square communication matrix. The zero value is unusable; use
// New (dense) or NewSparse. Methods panic on out-of-range indices, mirroring
// slice semantics. Exactly one of v and rows is non-nil; see sparse.go for
// the sparse mode and the bit-reproducibility contract shared by both.
type Matrix struct {
	n      int
	v      []float64   // dense mode: row-major, length n*n
	rows   []sparseRow // sparse mode: per-row sorted adjacency, length n
	labels []string    // optional entity names, length n when present
}

// New returns an order-n zero matrix.
func New(n int) *Matrix {
	if n < 0 {
		panic("comm: negative matrix order")
	}
	return &Matrix{n: n, v: make([]float64, n*n)}
}

// Order returns the number of computing entities (the matrix dimension).
func (m *Matrix) Order() int { return m.n }

// At returns the volume exchanged between entities i and j. In sparse mode
// this is a binary search over row i's nonzeros; hot loops should prefer
// ForEachNeighbor.
func (m *Matrix) At(i, j int) float64 {
	if m.rows != nil {
		if i < 0 || i >= m.n || j < 0 || j >= m.n {
			panic("comm: index out of range")
		}
		return m.rows[i].at(j)
	}
	return m.v[i*m.n+j]
}

// Set assigns the volume exchanged between entities i and j.
func (m *Matrix) Set(i, j int, vol float64) {
	if m.rows != nil {
		if i < 0 || i >= m.n || j < 0 || j >= m.n {
			panic("comm: index out of range")
		}
		m.rows[i].set(j, vol)
		return
	}
	m.v[i*m.n+j] = vol
}

// Add accumulates volume onto entry (i,j).
func (m *Matrix) Add(i, j int, vol float64) {
	if m.rows != nil {
		if i < 0 || i >= m.n || j < 0 || j >= m.n {
			panic("comm: index out of range")
		}
		m.rows[i].add(j, vol)
		return
	}
	m.v[i*m.n+j] += vol
}

// AddSym accumulates volume onto both (i,j) and (j,i), the natural operation
// when recording one message of the given size between two entities.
func (m *Matrix) AddSym(i, j int, vol float64) {
	if m.rows != nil {
		m.Add(i, j, vol)
		if i != j {
			m.Add(j, i, vol)
		}
		return
	}
	m.v[i*m.n+j] += vol
	if i != j {
		m.v[j*m.n+i] += vol
	}
}

// Label returns the name of entity i, or "t<i>" when no labels were set.
func (m *Matrix) Label(i int) string {
	if m.labels == nil {
		return fmt.Sprintf("t%d", i)
	}
	return m.labels[i]
}

// SetLabel names entity i.
func (m *Matrix) SetLabel(i int, s string) {
	if m.labels == nil {
		m.labels = make([]string, m.n)
		for k := range m.labels {
			m.labels[k] = fmt.Sprintf("t%d", k)
		}
	}
	m.labels[i] = s
}

// Clone returns a deep copy of the matrix, preserving the storage mode.
func (m *Matrix) Clone() *Matrix {
	var c *Matrix
	if m.rows != nil {
		c = NewSparse(m.n)
		for i := range m.rows {
			c.rows[i] = m.rows[i].clone()
		}
	} else {
		c = New(m.n)
		copy(c.v, m.v)
	}
	if m.labels != nil {
		c.labels = append([]string(nil), m.labels...)
	}
	return c
}

// IsSymmetric reports whether the matrix equals its transpose exactly.
func (m *Matrix) IsSymmetric() bool {
	if m.rows != nil {
		// Every stored entry must see its mirror; pairs with neither side
		// stored are trivially 0 == 0.
		for i := range m.rows {
			r := &m.rows[i]
			for p, c := range r.cols {
				j := int(c)
				if j != i && m.rows[j].at(i) != r.vals[p] {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.At(i, j) != m.At(j, i) {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces the matrix with (M + Mᵀ)/2 in place and returns it.
// TreeMatch assumes affinity is symmetric.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != nil {
		// Visit stored entries (snapshotting each row's columns first, since
		// setting the mirror may grow other rows); pairs stored on either
		// side get averaged, possibly twice — the second average of two
		// equal values is exact, so the result is well-defined.
		for i := range m.rows {
			cols := append([]int32(nil), m.rows[i].cols...)
			for _, c := range cols {
				j := int(c)
				if j == i {
					continue
				}
				avg := (m.rows[i].at(j) + m.rows[j].at(i)) / 2
				m.rows[i].set(j, avg)
				m.rows[j].set(i, avg)
			}
		}
		return m
	}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
	return m
}

// TotalVolume returns the sum of all off-diagonal entries, i.e. twice the
// total pairwise communication volume of a symmetric matrix. Both storage
// modes accumulate the nonzero terms in the same (row-major) order, so the
// result is bit-identical across them.
func (m *Matrix) TotalVolume() float64 {
	var s float64
	for i := 0; i < m.n; i++ {
		m.ForEachNeighbor(i, func(j int, v float64) {
			if j != i {
				s += v
			}
		})
	}
	return s
}

// RowVolume returns the total off-diagonal volume of row i: how much entity
// i exchanges with everyone else (in its outgoing direction).
func (m *Matrix) RowVolume(i int) float64 {
	var s float64
	m.ForEachNeighbor(i, func(j int, v float64) {
		if j != i {
			s += v
		}
	})
	return s
}

// Aggregate builds the quotient matrix over a partition of the entities:
// entry (a,b) of the result is the total volume between the entities of
// groups[a] and those of groups[b]; diagonal entries accumulate the volume
// internal to each group. Every entity index must appear in exactly one
// group. This is the AggregateComMatrix step of the paper's Algorithm 1.
func (m *Matrix) Aggregate(groups [][]int) (*Matrix, error) {
	seen := make([]bool, m.n)
	for _, g := range groups {
		for _, e := range g {
			if e < 0 || e >= m.n {
				return nil, fmt.Errorf("comm: aggregate: entity %d out of range [0,%d)", e, m.n)
			}
			if seen[e] {
				return nil, fmt.Errorf("comm: aggregate: entity %d appears in two groups", e)
			}
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("comm: aggregate: entity %d not covered by any group", e)
		}
	}
	if m.rows != nil {
		sorted := true
		for _, g := range groups {
			if !rowSorted(g) {
				sorted = false
				break
			}
		}
		if sorted {
			return m.aggregateSparse(groups), nil
		}
		// Unsorted groups (no in-repo caller): per-cell accumulation in the
		// dense nested-loop order, sparse output.
		agg := NewSparse(len(groups))
		for a, ga := range groups {
			for b, gb := range groups {
				var s float64
				for _, i := range ga {
					for _, j := range gb {
						s += m.At(i, j)
					}
				}
				agg.Set(a, b, s)
			}
		}
		return agg, nil
	}
	agg := New(len(groups))
	for a, ga := range groups {
		for b, gb := range groups {
			var s float64
			for _, i := range ga {
				for _, j := range gb {
					s += m.At(i, j)
				}
			}
			agg.Set(a, b, s)
		}
	}
	return agg, nil
}

// ExtendZero returns a copy of the matrix grown to the given larger order;
// the new rows and columns are zero. Used when virtual entities (spare
// slots, unmapped control threads) must be represented. Labels of the new
// entities default to "v<i>".
func (m *Matrix) ExtendZero(order int) (*Matrix, error) {
	if order < m.n {
		return nil, fmt.Errorf("comm: cannot extend order %d down to %d", m.n, order)
	}
	var e *Matrix
	if m.rows != nil {
		e = NewSparse(order)
		for i := range m.rows {
			e.rows[i] = m.rows[i].clone()
		}
	} else {
		e = New(order)
		for i := 0; i < m.n; i++ {
			copy(e.v[i*order:i*order+m.n], m.v[i*m.n:(i+1)*m.n])
		}
	}
	if m.labels != nil || order > m.n {
		e.labels = make([]string, order)
		for i := range e.labels {
			switch {
			case i < m.n:
				e.labels[i] = m.Label(i)
			default:
				e.labels[i] = fmt.Sprintf("v%d", i)
			}
		}
	}
	return e, nil
}

// Submatrix returns the restriction of the matrix to the given entities, in
// the given order: entry (a,b) of the result is the volume between
// entities ids[a] and ids[b]. Labels follow. Indices must be in range and
// distinct. Hierarchical placement uses this to carve one cluster node's
// task set out of the global affinity matrix.
func (m *Matrix) Submatrix(ids []int) (*Matrix, error) {
	seen := make([]bool, m.n)
	for _, e := range ids {
		if e < 0 || e >= m.n {
			return nil, fmt.Errorf("comm: submatrix: entity %d out of range [0,%d)", e, m.n)
		}
		if seen[e] {
			return nil, fmt.Errorf("comm: submatrix: entity %d appears twice", e)
		}
		seen[e] = true
	}
	var s *Matrix
	if m.rows != nil {
		s = NewSparse(len(ids))
		newPos := make([]int32, m.n)
		for i := range newPos {
			newPos[i] = -1
		}
		for b, j := range ids {
			newPos[j] = int32(b)
		}
		for a, i := range ids {
			r := &m.rows[i]
			var cols []int32
			var vals []float64
			for p, c := range r.cols {
				if b := newPos[c]; b >= 0 {
					cols = append(cols, b)
					vals = append(vals, r.vals[p])
				}
			}
			sort.Sort(&colValSorter{cols, vals})
			s.rows[a] = sparseRow{cols: cols, vals: vals}
		}
	} else {
		s = New(len(ids))
		for a, i := range ids {
			for b, j := range ids {
				s.Set(a, b, m.At(i, j))
			}
		}
	}
	if m.labels != nil {
		for a, i := range ids {
			s.SetLabel(a, m.Label(i))
		}
	}
	return s, nil
}

// MaxEntry returns the largest entry of the matrix (0 for an empty matrix;
// in sparse mode absent entries count as 0, so the result is never negative
// for matrices with free slots).
func (m *Matrix) MaxEntry() float64 {
	var mx float64
	if m.rows != nil {
		for i := range m.rows {
			for _, x := range m.rows[i].vals {
				if x > mx {
					mx = x
				}
			}
		}
		return mx
	}
	for _, x := range m.v {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Scale multiplies every entry by f in place and returns the matrix. In
// sparse mode only stored entries are scaled (absent zeros stay zero, so a
// non-finite f does not materialize NaNs the dense mode would produce).
func (m *Matrix) Scale(f float64) *Matrix {
	if m.rows != nil {
		for i := range m.rows {
			vals := m.rows[i].vals
			for p := range vals {
				vals[p] *= f
			}
		}
		return m
	}
	for i := range m.v {
		m.v[i] *= f
	}
	return m
}

// Equal reports whether two matrices have the same order and entries within
// the given absolute tolerance. Matrices of different storage modes compare
// by value (at O(n²) cost via At).
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.n != o.n {
		return false
	}
	if m.rows == nil && o.rows == nil {
		for i := range m.v {
			if math.Abs(m.v[i]-o.v[i]) > tol {
				return false
			}
		}
		return true
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if math.Abs(m.At(i, j)-o.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}
