package numasim

import (
	"fmt"
	"math/rand"
	"sync"
)

// Proc is a simulated execution context (one software thread) with a virtual
// clock in CPU cycles. A Proc is either bound to a fixed PU — the effect of
// the paper's placement module — or unbound, in which case a seeded,
// simulated OS scheduler assigns it a PU and may migrate it whenever the
// workload reaches a scheduling point (Reschedule).
//
// A Proc is not safe for concurrent use: it belongs to the single goroutine
// that drives its task. Cross-Proc interactions (lock handoffs) go through
// AdvanceTo with times published under external synchronization.
type Proc struct {
	m *Machine

	mu    sync.Mutex
	pu    int  // current PU, -1 if not yet scheduled
	bound bool // placement fixed by the mapping module
	cold  bool // caches invalidated by a migration
	clock float64
	rng   *rand.Rand
	name  string
	stats ProcStats
}

// ProcStats accumulates per-Proc accounting, exposed for tests and traces.
type ProcStats struct {
	ComputeCycles  float64
	MemoryCycles   float64
	TransferCycles float64
	WaitCycles     float64
	Migrations     int
	BytesMoved     float64
}

// NewProc creates a Proc bound to the given PU. Bound Procs never migrate;
// their core occupancy participates in the SMT compute-inflation model.
func (m *Machine) NewProc(name string, pu int) (*Proc, error) {
	if pu < 0 || pu >= m.topo.NumPUs() {
		return nil, fmt.Errorf("numasim: PU %d out of range [0,%d)", pu, m.topo.NumPUs())
	}
	m.bindPU(pu, +1)
	return &Proc{m: m, pu: pu, bound: true, name: name}, nil
}

// NewUnboundProc creates a Proc managed by the simulated OS scheduler: it
// starts on a seed-determined PU and migrates to a new uniformly random PU
// at every Reschedule call, modelling an affinity-blind runtime. The seed
// makes runs reproducible.
func (m *Machine) NewUnboundProc(name string, seed int64) *Proc {
	p := &Proc{m: m, pu: -1, bound: false, name: name, rng: rand.New(rand.NewSource(seed))}
	p.pu = p.rng.Intn(m.topo.NumPUs())
	return p
}

// Name returns the Proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// PU returns the PU the Proc currently runs on.
func (p *Proc) PU() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pu
}

// Bound reports whether the Proc was pinned by the placement module.
func (p *Proc) Bound() bool { return p.bound }

// Clock returns the Proc's virtual time in cycles.
func (p *Proc) Clock() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clock
}

// Seconds returns the Proc's virtual time in simulated seconds.
func (p *Proc) Seconds() float64 { return p.m.CyclesToSeconds(p.Clock()) }

// Stats returns a copy of the Proc's accounting counters.
func (p *Proc) Stats() ProcStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Compute charges the given number of floating-point operations.
func (p *Proc) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c := flops / p.m.cfg.FlopsPerCycle * p.m.computeInflation(p.pu)
	p.clock += c
	p.stats.ComputeCycles += c
}

// ComputeCycles charges raw cycles (for costs already expressed in cycles).
func (p *Proc) ComputeCycles(cycles float64) {
	if cycles <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock += cycles
	p.stats.ComputeCycles += cycles
}

// MemRead charges the cost of streaming the given number of bytes of the
// region into the Proc. A cold Proc (just migrated) always pays the full
// memory cost even for data it had cached before.
func (p *Proc) MemRead(r *Region, bytes float64) {
	p.memAccess(r, bytes)
}

// MemWrite charges the cost of writing bytes to the region. The model
// prices reads and writes identically (write-allocate caches move the same
// lines both ways).
func (p *Proc) MemWrite(r *Region, bytes float64) {
	p.memAccess(r, bytes)
}

// SweepWorkingSet charges one full sweep over a working set of the region:
// bytes scaled by the PU's cache miss factor, so sets that fit in the
// Proc's cache share cost only their escaping fraction. A cold Proc pays
// the full traffic once and becomes warm.
func (p *Proc) SweepWorkingSet(r *Region, workingSet int64) {
	p.mu.Lock()
	factor := p.m.MissFactor(p.pu, workingSet)
	if p.cold {
		factor = 1
		p.cold = false
	}
	p.mu.Unlock()
	p.memAccess(r, float64(workingSet)*factor)
}

func (p *Proc) memAccess(r *Region, bytes float64) {
	if bytes <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	node := r.touch(p.pu)
	var c float64
	if node < 0 { // interleaved: average the cost over all nodes
		n := p.m.topo.NumNUMANodes()
		per := bytes / float64(n)
		for i := 0; i < n; i++ {
			c += p.m.memCostCycles(p.pu, i, per)
		}
	} else {
		c = p.m.memCostCycles(p.pu, node, bytes)
	}
	p.clock += c
	p.stats.MemoryCycles += c
	p.stats.BytesMoved += bytes
}

// Touch resolves a first-touch region's home to this Proc's node without
// charging any cost (the initialization loop's traffic is accounted by the
// caller if it matters).
func (p *Proc) Touch(r *Region) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.touch(p.pu)
}

// AdvanceTo moves the Proc's clock forward to at least t cycles, recording
// the difference as wait time. It never moves the clock backwards. Used for
// lock grants: the new holder cannot proceed before the grant time.
func (p *Proc) AdvanceTo(t float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t > p.clock {
		p.stats.WaitCycles += t - p.clock
		p.clock = t
	}
}

// ChargeTransfer adds a transfer cost (computed by Machine.TransferCost) to
// the Proc's clock.
func (p *Proc) ChargeTransfer(cycles float64) {
	if cycles <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock += cycles
	p.stats.TransferCycles += cycles
}

// Reschedule is a scheduling point: a bound Proc ignores it; an unbound Proc
// is migrated to a new uniformly random PU with the given probability,
// paying the migration penalty and losing cache warmth. The paper's NoBind
// and OpenMP configurations call this at iteration boundaries.
func (p *Proc) Reschedule(migrationProbability float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bound || p.rng == nil {
		return
	}
	if p.rng.Float64() >= migrationProbability {
		return
	}
	newPU := p.rng.Intn(p.m.topo.NumPUs())
	if newPU == p.pu {
		return
	}
	p.pu = newPU
	p.cold = true
	p.clock += p.m.cfg.MigrationPenaltyCycles
	p.stats.Migrations++
}

// MigrateTo moves the Proc to the given PU mid-run and prices the move: the
// migration penalty (pipeline drain + scheduler latency) is charged to the
// Proc's clock, its caches go cold (the next working-set sweep pays full
// traffic), and the move pins the Proc there (an adaptive placement decision
// is a binding). Moving to the current PU of an already-bound Proc is free.
// This is the cost model behind epoch-based re-placement: adapting is never
// free, so an engine must weigh the predicted gain against this price (see
// Machine.MigrationCostCycles).
func (p *Proc) MigrateTo(pu int) error {
	return p.move(pu, true)
}

// PlaceAt moves the Proc to the given PU without charging anything: the
// oracle variant of MigrateTo, used to bound how much an adaptive engine
// could gain if migration were free. The move still pins the Proc and still
// counts in the migration statistics, but the clock and cache state are
// untouched.
func (p *Proc) PlaceAt(pu int) error {
	return p.move(pu, false)
}

// move pins the Proc to pu, charging the migration penalty and invalidating
// the caches when charged is true.
func (p *Proc) move(pu int, charged bool) error {
	if pu < 0 || pu >= p.m.topo.NumPUs() {
		return fmt.Errorf("numasim: PU %d out of range [0,%d)", pu, p.m.topo.NumPUs())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pu == p.pu {
		if !p.bound {
			p.bound = true
			p.m.bindPU(pu, +1)
		}
		return nil
	}
	if p.bound {
		p.m.bindPU(p.pu, -1)
	}
	p.m.bindPU(pu, +1)
	p.bound = true
	p.pu = pu
	if charged {
		p.cold = true
		p.clock += p.m.cfg.MigrationPenaltyCycles
	}
	p.stats.Migrations++
	return nil
}

// MigrateRegion re-homes a region onto the Proc's current NUMA node,
// charging the Proc one full stream of the region from its old home (the
// page-migration copy). Re-homing a region already local to the Proc is
// free. Interleaved regions cannot be re-homed. When the old home's cluster
// node has been killed by a fault event, memCostCycles prices the copy as a
// stream from the checkpoint node instead — an evacuation re-materializes
// lost data from surviving storage, it cannot pull from the dead node.
func (p *Proc) MigrateRegion(r *Region) error {
	if r.Policy() == Interleaved {
		return fmt.Errorf("numasim: cannot re-home interleaved region %q", r.Name())
	}
	p.mu.Lock()
	node := p.m.nodeOf[p.pu]
	p.mu.Unlock()
	old := r.Home()
	if old == node {
		return nil
	}
	// An untouched first-touch region has no pages to copy; otherwise the
	// copy streams from the old home (resolved before the region moves).
	if old >= 0 {
		p.MemRead(r, float64(r.Bytes()))
	}
	return r.MoveTo(node)
}

// Release unbinds a bound Proc from its core's occupancy accounting. Call
// when the task exits; required only when Procs are created and destroyed
// repeatedly on one Machine.
func (p *Proc) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bound {
		p.m.bindPU(p.pu, -1)
		p.bound = false
	}
}

// Makespan returns the maximum clock, in cycles, over the given Procs: the
// virtual completion time of the parallel phase they executed.
func Makespan(procs []*Proc) float64 {
	var mx float64
	for _, p := range procs {
		if c := p.Clock(); c > mx {
			mx = c
		}
	}
	return mx
}
