package main

import (
	"strings"
	"testing"
)

func TestBuildConfigValidation(t *testing.T) {
	tests := []struct {
		name                                      string
		rows, cols, iters, cores, perSock, blocks int
		wantErr                                   string
	}{
		{"defaults", 16384, 16384, 100, 192, 8, 0, ""},
		{"zero means default", 0, 0, 0, 0, 0, 0, ""},
		{"negative cores", 64, 64, 5, -1, 8, 0, "core count"},
		{"zero rows survive, tiny rows do not", 2, 64, 5, 8, 8, 0, "too small"},
		{"negative cols", 64, -4, 5, 8, 8, 0, "too small"},
		{"zero iters default, negative iters rejected", 64, 64, -1, 8, 8, 0, "iteration count"},
		{"negative cores per socket", 64, 64, 5, 8, -2, 0, "cores per socket"},
		{"negative blocks", 64, 64, 5, 8, 8, -3, "block count"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildConfig(tc.rows, tc.cols, tc.iters, tc.cores, tc.perSock, tc.blocks, 42)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid config, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
