package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHopMatrixProperties(t *testing.T) {
	for _, spec := range []string{
		"pack:2 core:2 pu:2",
		"pack:4 l3:1 core:4 pu:1",
		"group:2 pack:2 numa:2 core:2 pu:1",
	} {
		top := mustSpec(t, spec)
		m := top.HopMatrix()
		n := len(m)
		for i := 0; i < n; i++ {
			if m[i][i] != 0 {
				t.Errorf("%s: diagonal (%d,%d) = %d, want 0", spec, i, i, m[i][i])
			}
			for j := 0; j < n; j++ {
				if m[i][j] != m[j][i] {
					t.Errorf("%s: asymmetric at (%d,%d): %d vs %d", spec, i, j, m[i][j], m[j][i])
				}
				if i != j && m[i][j] <= 0 {
					t.Errorf("%s: non-positive off-diagonal at (%d,%d): %d", spec, i, j, m[i][j])
				}
			}
		}
		if err := top.CheckUltrametric(); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}

// TestHopMatrixUltrametricQuick drives CheckUltrametric over randomly drawn
// topology shapes as a property-based test.
func TestHopMatrixUltrametricQuick(t *testing.T) {
	f := func(a, b, c uint8) bool {
		// Keep shapes small so the O(n^3) check stays fast.
		packs := int(a%3) + 1
		cores := int(b%3) + 1
		pus := int(c%2) + 1
		top, err := FromSpec(
			"pack:" + itoa(packs) + " core:" + itoa(cores) + " pu:" + itoa(pus))
		if err != nil {
			return false
		}
		return top.CheckUltrametric() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestLatencyCycles(t *testing.T) {
	// Per package: one L3, two L2s, one L1 per L2, one core per L1, 2 PUs
	// per core, i.e. 4 PUs per package.
	top := mustSpec(t, "pack:2 l3:1 l2:2 l1:1 core:1 pu:2")
	def := DefaultAttrs()
	pus := top.PUs()
	// Same PU: L1 latency.
	if got := top.LatencyCycles(pus[0], pus[0]); got != def.L1Latency {
		t.Errorf("same-PU latency = %v, want %v", got, def.L1Latency)
	}
	// Co-hyperthreads share the L1.
	if got := top.LatencyCycles(pus[0], pus[1]); got != def.L1Latency {
		t.Errorf("same-core latency = %v, want %v", got, def.L1Latency)
	}
	// Different core, same package: innermost shared cache is the L3.
	if got := top.LatencyCycles(pus[0], pus[2]); got != def.L3Latency {
		t.Errorf("same-package latency = %v, want L3 %v", got, def.L3Latency)
	}
	// Different packages: remote memory, strictly more than local latency.
	remote := top.LatencyCycles(pus[0], pus[4])
	if remote <= def.MemLatencyCycles {
		t.Errorf("remote latency = %v, want > local %v", remote, def.MemLatencyCycles)
	}
}

func TestLatencyMatrixMonotoneWithDistance(t *testing.T) {
	top := PaperMachine()
	pus := top.PUs()
	lat := func(i, j int) float64 { return top.LatencyCycles(pus[i], pus[j]) }
	// Same-socket neighbours must be cheaper than cross-socket ones.
	if !(lat(0, 1) < lat(0, 8)) {
		t.Errorf("same-socket latency %v not < cross-socket %v", lat(0, 1), lat(0, 8))
	}
	// Remote latencies do not depend on which remote socket (flat SMP tree).
	if lat(0, 8) != lat(0, 191) {
		t.Errorf("remote latencies differ on a flat tree: %v vs %v", lat(0, 8), lat(0, 191))
	}
}

func TestNUMADistanceMatrix(t *testing.T) {
	top := mustSpec(t, "pack:4 core:2 pu:1")
	m := top.NUMADistanceMatrix()
	if len(m) != 4 {
		t.Fatalf("matrix order = %d, want 4", len(m))
	}
	for i := range m {
		if m[i][i] != 10 {
			t.Errorf("local distance (%d,%d) = %d, want 10", i, i, m[i][i])
		}
		for j := range m {
			if i != j && m[i][j] <= 10 {
				t.Errorf("remote distance (%d,%d) = %d, want > 10", i, j, m[i][j])
			}
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestBandwidth(t *testing.T) {
	top := PaperMachine()
	def := DefaultAttrs()
	pu0 := top.PU(0)
	local := top.NUMANodeOf(pu0)
	remote := top.NUMANodes()[5]
	if got := top.BandwidthBytesPerSec(pu0, local); got != def.MemBandwidth {
		t.Errorf("local bandwidth = %v, want %v", got, def.MemBandwidth)
	}
	rb := top.BandwidthBytesPerSec(pu0, remote)
	if rb >= def.MemBandwidth {
		t.Errorf("remote bandwidth %v not below local %v", rb, def.MemBandwidth)
	}
	if rb < def.MemBandwidth/8 {
		t.Errorf("remote bandwidth %v below the 1/8 floor", rb)
	}
	if got := top.BandwidthBytesPerSec(nil, remote); got != 0 {
		t.Errorf("nil PU bandwidth = %v, want 0", got)
	}
}

func TestLatencyMatrixMemoized(t *testing.T) {
	top := PaperMachine()
	first := top.LatencyMatrix()
	second := top.LatencyMatrix()
	if &first[0][0] != &second[0][0] {
		t.Error("LatencyMatrix rebuilt on second call; want memoized backing slices")
	}
	// The memoized matrix must hold exactly the values LatencyCycles gives.
	for i := range first {
		for j := range first[i] {
			if want := top.LatencyCycles(top.PU(i), top.PU(j)); first[i][j] != want {
				t.Fatalf("entry (%d,%d) = %v, want %v", i, j, first[i][j], want)
			}
		}
	}
}
