package placement

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/topology"
	"repro/internal/treematch"
)

// Hierarchical is the multi-level placement policy for clustered machines:
// the task graph is first partitioned across the cluster nodes with a cut-
// minimizing grouping (treematch.PartitionAcross) — every cut byte crosses
// the interconnect fabric, so the node-level cut dominates the cost — and
// the ordinary Algorithm 1 then maps each node's task group onto that
// node's intra-machine tree from the group's sub-matrix. On a machine
// without a cluster level it degrades to the plain TreeMatch policy.
//
// On a multi-switch fabric (a topology with a rack tier) placement is
// three-level: the aggregated group-to-group matrix is itself treematch-
// mapped onto the fabric tree (treematch.FabricTree), so groups that
// exchange heavy residual volume land in the same rack and only light
// traffic crosses the rack uplinks. On a flat single-switch fabric every
// group-to-node assignment prices identically, so the matching is skipped
// and group g runs on node g, which keeps the result deterministic.
//
// Compared with running flat TreeMatch on the whole cluster tree, the
// explicit top split optimizes the fabric cut directly instead of letting it
// emerge from bottom-up core-level grouping, and keeps the per-node
// instances small.
type Hierarchical struct {
	// Options tunes the underlying grouping heuristic at all levels.
	Options treematch.Options
	// NoDistribute disables the per-node NUMA distribution step, mirroring
	// TreeMatch.NoDistribute.
	NoDistribute bool
	// NoFabricMatch disables the group→node matching on multi-switch
	// fabrics, pinning partition group g to cluster node g as on a flat
	// fabric. This is the fabric-blind arm of ablation A10: the node-level
	// cut is still minimized, but where each group lands relative to the
	// rack boundaries is left to chance.
	NoFabricMatch bool
}

// Name implements Policy.
func (Hierarchical) Name() string { return "hierarchical" }

// Assign implements Policy.
func (p Hierarchical) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: hierarchical requires a machine")
	}
	topo := mach.Topology()
	nodes := len(topo.ClusterNodes())
	if nodes <= 1 {
		a, err := TreeMatch{Options: p.Options, NoDistribute: p.NoDistribute}.Assign(mach, m)
		if err != nil {
			return nil, err
		}
		a.Policy = p.Name()
		return a, nil
	}

	nodeTree, err := treematch.NodeSubtree(topo, topology.Core)
	if err != nil {
		return nil, err
	}
	coresPerNode := topo.NumCores() / nodes

	// Level 1: split the task graph across the cluster nodes, minimizing
	// the volume that must cross the fabric.
	groups, groupMatrix, err := treematch.PartitionAcrossMatrix(m, nodes, p.Options)
	if err != nil {
		return nil, err
	}

	// Level 2 (multi-switch fabrics only): treematch-map the aggregated
	// group matrix onto the fabric tree, so groups with heavy residual
	// traffic share a rack. On a single-switch fabric every group→node
	// assignment prices identically, and the identity keeps A9 and older
	// results bit-stable.
	nodeOf := make([]int, len(groups))
	for g := range nodeOf {
		nodeOf[g] = g
	}
	if !p.NoFabricMatch && topo.NumRacks() > 1 {
		fabricTree, err := treematch.FabricTree(topo)
		if err != nil {
			return nil, err
		}
		// Clustering, not distribution: spreading groups across racks is
		// exactly what the matching must avoid, so the tree is not
		// restricted.
		fabricOpts := p.Options
		fabricOpts.Distribute = false
		mp, err := treematch.MapMatrix(fabricTree, groupMatrix, fabricOpts)
		if err != nil {
			return nil, fmt.Errorf("placement: hierarchical fabric matching: %w", err)
		}
		copy(nodeOf, mp.Assignment)
	}

	a := &Assignment{
		Policy:       p.Name(),
		TaskPU:       make([]int, m.Order()),
		ControlPU:    make([]int, m.Order()),
		Strategy:     treematch.ControlHyperthread,
		VirtualArity: 1,
	}
	opts := p.Options
	opts.Distribute = !p.NoDistribute
	ways := topo.SMTWays()
	nonEmpty := 0
	for g, group := range groups {
		if len(group) == 0 {
			continue
		}
		node := nodeOf[g]
		// Bottom level: the ordinary Algorithm 1 on this node's sub-matrix
		// and intra-machine tree, including the control-thread adaptation.
		sub, err := m.Submatrix(group)
		if err != nil {
			return nil, err
		}
		res, err := treematch.Map(treematch.Target{Tree: nodeTree, SMTWays: ways}, sub, opts)
		if err != nil {
			return nil, fmt.Errorf("placement: hierarchical node %d: %w", node, err)
		}
		for local, task := range group {
			core := node*coresPerNode + res.Assignment[local]
			a.TaskPU[task] = firstPU(topo, core)
			switch {
			case res.Control[local] < 0:
				a.ControlPU[task] = -1
			case res.Strategy == treematch.ControlHyperthread:
				a.ControlPU[task] = secondPU(topo, node*coresPerNode+res.Control[local])
			default:
				a.ControlPU[task] = firstPU(topo, node*coresPerNode+res.Control[local])
			}
		}
		// Nodes of different sizes may resolve the control threads
		// differently; report the most conservative strategy in force on
		// any node (hyperthread < spare-cores < unmapped), so the summary
		// never overstates what the bindings deliver.
		nonEmpty++
		if res.Strategy > a.Strategy {
			a.Strategy = res.Strategy
		}
		if res.VirtualArity > a.VirtualArity {
			a.VirtualArity = res.VirtualArity
		}
	}
	if nonEmpty == 0 {
		a.Strategy = treematch.ControlUnmapped
	}
	return a, nil
}

// RoundRobinNodes deals tasks across the cluster nodes round-robin:
// consecutive tasks land on different nodes, the affinity-blind cluster
// baseline (the multi-node analogue of Scatter). Within a node, cores fill
// sequentially. Control threads are left to the OS.
type RoundRobinNodes struct{}

// Name implements Policy.
func (RoundRobinNodes) Name() string { return "rr-nodes" }

// Assign implements Policy.
func (RoundRobinNodes) Assign(mach *numasim.Machine, m *comm.Matrix) (*Assignment, error) {
	if mach == nil {
		return nil, fmt.Errorf("placement: rr-nodes requires a machine")
	}
	topo := mach.Topology()
	nodes := topo.NumClusterNodes()
	cores := topo.NumCores()
	coresPerNode := cores / nodes
	a := unboundControls(m.Order(), "rr-nodes")
	for i := range a.TaskPU {
		node := i % nodes
		slot := i / nodes
		core := node*coresPerNode + slot%coresPerNode
		a.TaskPU[i] = firstPU(topo, core)
	}
	a.VirtualArity = (m.Order() + cores - 1) / cores
	return a, nil
}
