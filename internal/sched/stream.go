package sched

import (
	"fmt"
	"math"
	"math/rand"
)

// StreamConfig parameterizes the seeded workload generator. The generator is
// platform-agnostic: it emits JobSpecs whose constraint tiers are chosen
// from the configured names, and the scheduler validates them against the
// actual platform at admission time.
type StreamConfig struct {
	// Jobs is the stream length.
	Jobs int
	// Seed drives every random draw; identical configs give identical
	// streams.
	Seed int64
	// Sizes is the task-count mix jobs draw from uniformly. Every size
	// must have a stencil factorization (the generator picks the most
	// square one).
	Sizes []int
	// WorkCycles is the mean compute demand; each job draws uniformly in
	// [0.5, 1.5) of it.
	WorkCycles float64
	// VolumeBytes is the per-edge communication volume.
	VolumeBytes float64
	// Churn scales the arrival rate: mean interarrival = WorkCycles/Churn,
	// so higher churn overlaps more jobs and fragments the machine harder.
	Churn float64
	// ConstraintFraction of jobs carry topology constraints
	// (preferred=PreferredTier, required=RequiredTier).
	ConstraintFraction float64
	// PreferredTier and RequiredTier are the constraint tiers of the
	// constrained fraction ("" disables that side).
	PreferredTier, RequiredTier string
	// LongFraction makes the work distribution heavy-tailed: that
	// fraction of jobs multiplies its drawn work by LongFactor (default
	// 8 when unset). 0 disables the tail and consumes no extra random
	// draws, keeping phase-1 streams bit-identical. Long residents are
	// what gives a blocked head a real earliest-start window — the gap
	// conservative backfill packs short jobs into.
	LongFraction, LongFactor float64
	// PriorityClasses enables priority generation: when > 1, every
	// constrained job draws a priority uniformly in [1, PriorityClasses)
	// while unconstrained jobs stay at priority 0 — exactly the mix the
	// preemption policy acts on (required-constrained arrivals outrank
	// the flexible background jobs they may evict). 0 or 1 leaves every
	// job at priority 0 and consumes no extra random draws, so phase-1
	// streams are bit-identical to their pre-priority form.
	PriorityClasses int
}

func (cfg StreamConfig) withDefaults() StreamConfig {
	if cfg.Jobs == 0 {
		cfg.Jobs = 40
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{4, 6, 8, 12, 16}
	}
	if cfg.WorkCycles == 0 {
		cfg.WorkCycles = 2e6
	}
	if cfg.VolumeBytes == 0 {
		cfg.VolumeBytes = 64 << 10
	}
	if cfg.Churn == 0 {
		cfg.Churn = 4
	}
	if cfg.LongFraction > 0 && cfg.LongFactor == 0 {
		cfg.LongFactor = 8
	}
	return cfg
}

// Validate rejects unusable stream parameters.
func (cfg StreamConfig) Validate() error {
	cfg = cfg.withDefaults()
	if cfg.Jobs < 1 || cfg.Jobs > 1<<20 {
		return fmt.Errorf("sched: stream jobs %d out of range", cfg.Jobs)
	}
	if cfg.Churn <= 0 || math.IsNaN(cfg.Churn) || math.IsInf(cfg.Churn, 0) {
		return fmt.Errorf("sched: stream churn %v out of range", cfg.Churn)
	}
	if cfg.ConstraintFraction < 0 || cfg.ConstraintFraction > 1 || math.IsNaN(cfg.ConstraintFraction) {
		return fmt.Errorf("sched: constraint fraction %v out of range [0,1]", cfg.ConstraintFraction)
	}
	for _, n := range cfg.Sizes {
		if n < 1 {
			return fmt.Errorf("sched: stream size %d out of range", n)
		}
	}
	if cfg.PriorityClasses < 0 || cfg.PriorityClasses > 100 {
		return fmt.Errorf("sched: priority classes %d out of range [0,100]", cfg.PriorityClasses)
	}
	if cfg.LongFraction < 0 || cfg.LongFraction > 1 || math.IsNaN(cfg.LongFraction) {
		return fmt.Errorf("sched: long fraction %v out of range [0,1]", cfg.LongFraction)
	}
	if cfg.LongFraction > 0 && (cfg.LongFactor < 1 || cfg.LongFactor > 1000 || math.IsNaN(cfg.LongFactor)) {
		return fmt.Errorf("sched: long factor %v out of range [1,1000]", cfg.LongFactor)
	}
	return nil
}

// squarestDims returns the most square WxH factorization of n (W >= H).
func squarestDims(n int) (int, int) {
	for h := int(math.Sqrt(float64(n))); h >= 1; h-- {
		if n%h == 0 {
			return n / h, h
		}
	}
	return n, 1
}

// GenerateStream emits a deterministic job stream: arrivals are a Poisson
// process at rate Churn/WorkCycles, task graphs are seed-scrambled stencils
// (so slot-order placement scatters the heavy edges), and a configured
// fraction of jobs carries required/preferred topology constraints.
func GenerateStream(cfg StreamConfig) ([]JobSpec, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrive := 0.0
	mean := cfg.WorkCycles / cfg.Churn
	jobs := make([]JobSpec, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		arrive += rng.ExpFloat64() * mean
		tasks := cfg.Sizes[rng.Intn(len(cfg.Sizes))]
		w, h := squarestDims(tasks)
		work := math.Floor(cfg.WorkCycles * (0.5 + rng.Float64()))
		if cfg.LongFraction > 0 && rng.Float64() < cfg.LongFraction {
			work = math.Floor(work * cfg.LongFactor)
		}
		spec := JobSpec{
			Name:         fmt.Sprintf("j%03d", i),
			ArriveCycles: math.Floor(arrive),
			WorkCycles:   work,
			Tasks:        tasks,
			Pattern:      fmt.Sprintf("stencil:%dx%d@%d", w, h, rng.Int63n(1<<31)),
			VolumeBytes:  cfg.VolumeBytes,
		}
		if rng.Float64() < cfg.ConstraintFraction {
			spec.Preferred = cfg.PreferredTier
			spec.Required = cfg.RequiredTier
			if cfg.PriorityClasses > 1 {
				spec.Priority = 1 + rng.Intn(cfg.PriorityClasses-1)
			}
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		jobs = append(jobs, spec)
	}
	return jobs, nil
}
