package repro

import (
	"strings"
	"testing"
)

func TestFacadeSystem(t *testing.T) {
	sys, err := NewSystem(SystemOptions{TopologySpec: "pack:2 core:2 pu:1", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt := sys.Runtime()
	loc := rt.NewLocation("x", 8)
	loc.SetData([]float64{0})
	task := rt.AddTask("t", func(task *Task) error {
		h := task.Handle(0)
		if err := h.Acquire(); err != nil {
			return err
		}
		v, err := h.Float64s()
		if err != nil {
			return err
		}
		v[0] = 42
		return h.Release()
	})
	task.NewHandle(loc, Write)
	if err := sys.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := loc.PeekData().([]float64)[0]; got != 42 {
		t.Errorf("location = %v, want 42", got)
	}
}

func TestFacadeFigure1(t *testing.T) {
	rows, err := Figure1([]int{8, 16}, ExperimentConfig{
		Rows: 2048, Cols: 2048, Iters: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Bind <= 0 || r.NoBind <= 0 || r.OMP <= 0 {
			t.Errorf("missing times: %+v", r)
		}
	}
	out := FormatFigure1(rows)
	if !strings.Contains(out, "orwl-bind") {
		t.Errorf("table: %s", out)
	}
	if len(DefaultFigure1Points()) < 5 {
		t.Errorf("default points too few")
	}
}
