// Package numasim is a deterministic virtual-time simulator of a NUMA
// shared-memory machine. It substitutes for the 192-core SMP of the paper's
// evaluation, which cannot be reproduced directly in Go: the Go scheduler
// offers no core pinning, and the development container has two cores.
//
// The simulator does not interpret instructions. Instead, execution contexts
// (Proc) carry a virtual clock in CPU cycles, and the workload charges three
// kinds of costs against it:
//
//   - Compute: arithmetic, converted through a flops-per-cycle rate;
//   - memory traffic (MemRead/MemWrite): bytes moved between the Proc's
//     current PU and the NUMA node holding a Region, priced by latency,
//     distance-degraded bandwidth, and per-node contention;
//   - transfers (TransferCost): the cost of handing data from one PU to
//     another, used by the ORWL runtime when a lock (and the data it
//     protects) moves between tasks — cheap under a shared cache, expensive
//     across sockets.
//
// All costs are pure functions of (topology, placement, workload), so the
// resulting makespan — the maximum of the final clocks — is deterministic
// and independent of the real Go scheduler. Contention is modelled with
// static per-node accessor counts derived from the placement, which keeps
// the engine order-insensitive (see DESIGN.md §5.2).
//
// # Units
//
// Every cost in this package is measured in CPU cycles of the simulated
// clock (ClockHz); CyclesToSeconds converts to simulated seconds.
// Intra-machine charges derive from cache/memory latencies and bandwidths;
// transfers that cross a cluster-node boundary charge network cycles
// instead — the accumulated per-link latency of the actual hop path (NIC
// links, plus rack uplinks across racks and pod uplinks across pods;
// fabricLatencyCycles) and streaming at the bottleneck link bandwidth, each
// link shared by its declared crossing streams (per-level SetLinkStreams, or
// the machine-wide SetFabricStreams fallback). The simulator prices whatever
// placement it is
// given; it does not optimize. The placement side optimizes a structural
// byte×hop objective whose units never appear here — internal/comm's
// package documentation records where the two models are known to diverge.
package numasim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/topology"
)

// Config holds the microarchitectural constants of the simulated machine.
// Zero fields are replaced by the defaults of DefaultConfig.
type Config struct {
	// FlopsPerCycle is the per-core arithmetic throughput (FLOP/cycle).
	FlopsPerCycle float64
	// CacheBandwidthBytesPerCycle is the bandwidth of transfers served by a
	// shared cache (used for on-chip handoffs).
	CacheBandwidthBytesPerCycle float64
	// SMTComputeInflation is the factor applied to compute costs when two
	// bound Procs share a physical core (>= 1; 1 disables the effect).
	SMTComputeInflation float64
	// MigrationPenaltyCycles is charged every time an unbound Proc is
	// migrated by the simulated OS scheduler (pipeline drain + cache refill
	// latency, on top of the cold-cache effect on subsequent traffic).
	MigrationPenaltyCycles float64
	// MinCacheMissFactor bounds from below the fraction of a working set
	// that must be re-streamed from memory per sweep when the set fits in
	// the last-level cache (some traffic always escapes: cold misses,
	// write-backs, conflict misses).
	MinCacheMissFactor float64
	// InterconnectBandwidth is the aggregate bandwidth, in bytes/second, of
	// the machine's inter-socket fabric. Every remote memory stream shares
	// it (see SetRemoteStreams); 2011-era 24-socket SMPs sustained a few
	// GB/s per socket of cross-traffic, ~55 GB/s machine-wide.
	InterconnectBandwidth float64
}

// DefaultConfig returns constants plausible for the 2016-era machine of the
// paper (2-wide SSE floating point, ~32 B/cycle cache transfers).
func DefaultConfig() Config {
	return Config{
		FlopsPerCycle:               2,
		CacheBandwidthBytesPerCycle: 16,
		SMTComputeInflation:         1.6,
		MigrationPenaltyCycles:      50_000,
		MinCacheMissFactor:          0.15,
		InterconnectBandwidth:       55e9,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FlopsPerCycle == 0 {
		c.FlopsPerCycle = d.FlopsPerCycle
	}
	if c.CacheBandwidthBytesPerCycle == 0 {
		c.CacheBandwidthBytesPerCycle = d.CacheBandwidthBytesPerCycle
	}
	if c.SMTComputeInflation == 0 {
		c.SMTComputeInflation = d.SMTComputeInflation
	}
	if c.MigrationPenaltyCycles == 0 {
		c.MigrationPenaltyCycles = d.MigrationPenaltyCycles
	}
	if c.MinCacheMissFactor == 0 {
		c.MinCacheMissFactor = d.MinCacheMissFactor
	}
	if c.InterconnectBandwidth == 0 {
		c.InterconnectBandwidth = d.InterconnectBandwidth
	}
	return c
}

// Machine is a simulated NUMA machine built over a hardware topology. After
// setup (binding Procs, setting accessor counts) it is read-only and safe
// for concurrent use by many Procs.
type Machine struct {
	topo *topology.Topology
	cfg  Config

	clockHz float64
	// nodeOf[pu] is the NUMA node index local to each PU.
	nodeOf []int
	// coreOf[pu] is the core index of each PU.
	coreOf []int
	// cnodeOf[pu] is the cluster-node index of each PU (0 on a single
	// machine).
	cnodeOf []int
	// cnodeOfNUMA[node] is the cluster-node index of each NUMA node.
	cnodeOfNUMA []int
	// fabricLevels[l] lists the link objects of fabric level l, innermost
	// first: level 0 the cluster nodes (NIC links), level 1 the racks (ToR
	// uplinks), level 2 the pods (pod uplinks) — see topology.FabricLevels.
	// Nil on single-machine topologies.
	fabricLevels [][]*topology.Object
	// fabricGroupOf[l][c] is the index, within fabric level l, of cluster
	// node c's ancestor (the identity at level 0). Two cluster nodes'
	// hop path includes both endpoint links of every level where their
	// group indices differ.
	fabricGroupOf [][]int
	// fabricLinkLat[l][g] and fabricLinkBW[l][g] are the latency and
	// bandwidth attributes of link g at fabric level l, flattened out of the
	// topology objects once at construction so the per-transfer pricing paths
	// never chase object pointers.
	fabricLinkLat [][]float64
	fabricLinkBW  [][]float64
	// fabricCumLat[c][d] is the cached fabric distance table: the summed
	// latency of cluster node c's own-side links over fabric levels < d.
	// Since the hop path between two nodes diverging at level d traverses
	// both endpoint links of every level below d, its total latency is
	// fabricCumLat[from][d] + fabricCumLat[to][d] — two lookups instead of a
	// tree walk. Built once per topology in New.
	fabricCumLat [][]float64
	// fabricGraph is the routed fabric graph (topology.FabricGraph): the
	// torus/dragonfly graph on a shaped fabric, the compiled tree otherwise.
	// Nil on single-machine topologies. Shaped fabrics have no fabricLevels —
	// they price along routed edge paths instead of the per-level tables.
	fabricGraph *topology.FabricGraph
	// edgeLat[e] and edgeBW[e] are the fabric graph's edge attributes,
	// flattened once at construction for the pricing hot paths.
	edgeLat []float64
	edgeBW  []float64
	// levelEdge[l][g] is the fabric-graph edge id of link g at tree fabric
	// level l — the bridge that lets the per-level SetLinkStreams form
	// address the per-edge stream storage. Empty on shaped fabrics.
	levelEdge [][]int
	// l3Share[pu] is the slice of the innermost shared cache a PU can count
	// on, in bytes (cache size / PUs sharing it).
	l3Share []int64

	// Fault state, installed by ApplyFaultEvents. These fields are written
	// only while every Proc is quiesced — before Run, or inside an epoch
	// hook, which the barrier's lock edges order before any task's
	// subsequent charge — so the pricing hot paths read them without taking
	// mu. On a healthy machine all three stay at their zero values and every
	// fault branch below is skipped, keeping no-fault pricing bit-identical.
	//
	// deadCNode[c] marks cluster node c unreachable (nil until a kill).
	deadCNode []bool
	// edgeFaultFactor[e] is the remaining bandwidth fraction of fabric edge
	// e: 1 healthy, (0,1) degraded, 0 severed. Nil until an edge fault.
	edgeFaultFactor []float64
	// hasSevered records that some edge factor is 0, so memCostCycles must
	// check routed paths for unreachability.
	hasSevered bool
	// routingPolicy selects minimal or Valiant routing on the fabric graph.
	// Like the fault state it only changes while the machine is quiesced,
	// so pricing reads it without the lock. RouteMinimal (the zero value)
	// keeps pricing bit-identical to earlier revisions.
	routingPolicy RoutingPolicy

	mu sync.Mutex
	// accessors[node] is the static contention degree of each memory node:
	// how many execution streams hit it concurrently in steady state.
	accessors []int
	// remoteStreams is the static number of memory streams crossing the
	// inter-socket fabric in steady state; they share
	// cfg.InterconnectBandwidth.
	remoteStreams int
	// fabricStreams is the static number of streams crossing cluster-node
	// boundaries in steady state, the machine-wide fallback contention model:
	// every fabric link's bandwidth is shared among all of them. A fabric
	// level applies it only while that level's per-link counts are unset.
	fabricStreams int
	// edgeStreams[e], when edgeStreams is non-nil and edgeStreams[e] >= 0,
	// is the number of crossing streams touching fabric-graph edge e; a
	// negative entry leaves that edge on the global fabricStreams fallback.
	// Per-edge counts replace the global model edge by edge: a transfer is
	// capped by the most contended edge on its routed path, so balancing the
	// crossing streams across the fabric recovers bandwidth that the global
	// model would average away. On tree fabrics SetLinkStreams addresses
	// this same storage through levelEdge, so per-level declarations price
	// identically through the per-edge path. The slice is replaced wholesale
	// on every update (copy-on-write), so a snapshot taken under the lock
	// stays consistent outside it.
	edgeStreams []int
	// boundPerPU counts bound Procs per PU. SMT compute inflation applies
	// when at least two PUs of the same core are occupied (hyperthread
	// sharing); several Procs time-multiplexed on one PU do not inflate —
	// they overlap in virtual time, an optimistic but deliberate choice
	// documented in DESIGN.md.
	boundPerPU []int
	// pusOfCore lists the PU indices under each core.
	pusOfCore [][]int
}

// New builds a simulated machine over the given topology.
func New(topo *topology.Topology, cfg Config) (*Machine, error) {
	if topo == nil {
		return nil, fmt.Errorf("numasim: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("numasim: invalid topology: %w", err)
	}
	m := &Machine{
		topo:        topo,
		cfg:         cfg.withDefaults(),
		clockHz:     topo.Root().Attr.ClockHz,
		nodeOf:      make([]int, topo.NumPUs()),
		coreOf:      make([]int, topo.NumPUs()),
		cnodeOf:     make([]int, topo.NumPUs()),
		cnodeOfNUMA: make([]int, topo.NumNUMANodes()),
		l3Share:     make([]int64, topo.NumPUs()),
		accessors:   make([]int, topo.NumNUMANodes()),
		boundPerPU:  make([]int, topo.NumPUs()),
		pusOfCore:   make([][]int, topo.NumCores()),
	}
	if m.clockHz == 0 {
		m.clockHz = 2.27e9
	}
	for i, pu := range topo.PUs() {
		m.nodeOf[i] = topo.NUMANodeOf(pu).LevelIndex
		core := pu.Ancestor(topology.Core).LevelIndex
		m.coreOf[i] = core
		m.pusOfCore[core] = append(m.pusOfCore[core], i)
		m.l3Share[i] = cacheShare(topo, pu)
		if c := topo.ClusterNodeOf(pu); c != nil {
			m.cnodeOf[i] = c.LevelIndex
		}
	}
	for n, node := range topo.NUMANodes() {
		if c := topo.ClusterNodeOf(node); c != nil {
			m.cnodeOfNUMA[n] = c.LevelIndex
		}
	}
	if levels := topo.FabricLevels(); len(levels) > 0 {
		m.fabricLevels = levels
		m.fabricGroupOf = make([][]int, len(levels))
		for l, lv := range levels {
			kind := lv[0].Kind
			m.fabricGroupOf[l] = make([]int, len(topo.ClusterNodes()))
			for c, node := range topo.ClusterNodes() {
				m.fabricGroupOf[l][c] = node.Ancestor(kind).LevelIndex
			}
		}
		// Flatten the link attributes and build the per-node cumulative
		// latency prefixes that turn the hop-path walk into table lookups.
		m.fabricLinkLat = make([][]float64, len(levels))
		m.fabricLinkBW = make([][]float64, len(levels))
		for l, lv := range levels {
			lat := make([]float64, len(lv))
			bw := make([]float64, len(lv))
			for g, link := range lv {
				lat[g] = link.Attr.LatencyCycles
				bw[g] = link.Attr.BandwidthBytesPerSec
			}
			m.fabricLinkLat[l] = lat
			m.fabricLinkBW[l] = bw
		}
		m.fabricCumLat = make([][]float64, len(topo.ClusterNodes()))
		for c := range m.fabricCumLat {
			cum := make([]float64, len(levels)+1)
			for l := range levels {
				cum[l+1] = cum[l] + m.fabricLinkLat[l][m.fabricGroupOf[l][c]]
			}
			m.fabricCumLat[c] = cum
		}
	}
	if g := topo.FabricGraph(); g != nil {
		m.fabricGraph = g
		m.edgeLat = make([]float64, g.NumEdges())
		m.edgeBW = make([]float64, g.NumEdges())
		for i, e := range g.Edges() {
			m.edgeLat[i] = e.LatencyCycles
			m.edgeBW[i] = e.BandwidthBytesPerSec
		}
		m.levelEdge = make([][]int, g.NumLevels())
		for l := range m.levelEdge {
			m.levelEdge[l] = g.LevelEdges(l)
		}
	}
	for i := range m.accessors {
		m.accessors[i] = 1
	}
	return m, nil
}

// cacheShare returns the bytes of the innermost large shared cache available
// to one PU: the largest cache above it divided by the number of PUs below
// that cache.
func cacheShare(topo *topology.Topology, pu *topology.Object) int64 {
	var best int64
	for cur := pu.Parent; cur != nil; cur = cur.Parent {
		if cur.Kind.IsCache() && cur.Attr.CacheSize > 0 {
			share := cur.Attr.CacheSize / int64(countPUs(cur))
			if share > best {
				best = share
			}
		}
	}
	return best
}

func countPUs(o *topology.Object) int {
	if o.Kind == topology.PU {
		return 1
	}
	n := 0
	for _, c := range o.Children {
		n += countPUs(c)
	}
	return n
}

// Topology returns the underlying hardware topology.
func (m *Machine) Topology() *topology.Topology { return m.topo }

// Config returns the effective microarchitectural constants.
func (m *Machine) Config() Config { return m.cfg }

// ClockHz returns the simulated core frequency.
func (m *Machine) ClockHz() float64 { return m.clockHz }

// NodeOfPU returns the NUMA node index local to the given PU.
func (m *Machine) NodeOfPU(pu int) int { return m.nodeOf[pu] }

// SetAccessors declares the static contention degree of a memory node: the
// number of execution streams that hit it concurrently in steady state. The
// node's bandwidth is shared equally among them. Placement code calls this
// once the task layout is known; the default is 1 (no contention).
func (m *Machine) SetAccessors(node, count int) {
	if count < 1 {
		count = 1
	}
	m.mu.Lock()
	m.accessors[node] = count
	m.mu.Unlock()
}

// Accessors returns the contention degree of a node.
func (m *Machine) Accessors(node int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.accessors[node]
}

// ResetAccessors restores every node to contention degree 1 and clears the
// remote-stream and fabric-stream counts (global and per-link).
func (m *Machine) ResetAccessors() {
	m.mu.Lock()
	for i := range m.accessors {
		m.accessors[i] = 1
	}
	m.remoteStreams = 0
	m.fabricStreams = 0
	m.edgeStreams = nil
	m.mu.Unlock()
}

// SetRemoteStreams declares how many memory streams cross the inter-socket
// fabric in steady state; each remote access is additionally capped by an
// equal share of Config.InterconnectBandwidth. Placement code derives this
// from the task layout; 0 disables the cap.
func (m *Machine) SetRemoteStreams(n int) {
	if n < 0 {
		n = 0
	}
	m.mu.Lock()
	m.remoteStreams = n
	m.mu.Unlock()
}

// RemoteStreams returns the declared fabric contention degree.
func (m *Machine) RemoteStreams() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remoteStreams
}

// SetFabricStreams declares the machine-wide fallback fabric contention: how
// many streams cross cluster-node boundaries in steady state, every fabric
// edge's bandwidth shared equally among all of them. 0 disables the cap. Any
// per-edge counts previously declared with SetEdgeStreams or SetLinkStreams
// are cleared — the two models are alternatives, the per-edge one strictly
// finer. A no-op concern on single-machine topologies, where nothing
// crosses.
//
// Deprecated: declare per-edge counts with SetEdgeStreams (or the per-level
// SetLinkStreams form on tree fabrics); this remains as the global-fallback
// setter behind them.
func (m *Machine) SetFabricStreams(n int) {
	if n < 0 {
		n = 0
	}
	m.mu.Lock()
	m.fabricStreams = n
	m.edgeStreams = nil
	m.mu.Unlock()
}

// FabricStreams returns the declared machine-wide fabric contention degree
// (the fallback model): 0 once every fabric edge carries a per-edge count —
// the global count is then out of force everywhere — and the declared count
// otherwise, because edges without per-edge counts still price against it.
func (m *Machine) FabricStreams() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fabricGraph != nil && m.edgeStreams != nil {
		all := true
		for _, s := range m.edgeStreams {
			if s < 0 {
				all = false
				break
			}
		}
		if all {
			return 0
		}
	}
	return m.fabricStreams
}

// NumFabricLevels returns the number of link levels of the cluster fabric,
// innermost first: 0 on a single machine, 1 on a flat (single-switch)
// cluster (the NIC links), 2 with a rack tier (+ ToR uplinks), 3 with a pod
// tier (+ pod uplinks). Shaped (torus/dragonfly) fabrics have no levels —
// 0 here, with FabricGraph carrying the per-edge structure.
func (m *Machine) NumFabricLevels() int { return len(m.fabricLevels) }

// NumFabricEdges returns the number of edges of the routed fabric graph
// (0 on a single machine).
func (m *Machine) NumFabricEdges() int {
	if m.fabricGraph == nil {
		return 0
	}
	return m.fabricGraph.NumEdges()
}

// FabricGraph returns the routed fabric graph the machine prices
// cross-node transfers along, or nil on a single machine.
func (m *Machine) FabricGraph() *topology.FabricGraph { return m.fabricGraph }

// FabricLevelSize returns the number of links at a fabric level (the number
// of cluster nodes, racks, or pods).
func (m *Machine) FabricLevelSize(level int) int { return len(m.fabricLevels[level]) }

// FabricGroupOf returns the index, within the given fabric level, of the
// group containing cluster node c (at level 0, c itself). Two cluster nodes'
// transfer traverses both endpoint links of every level where their group
// indices differ.
func (m *Machine) FabricGroupOf(level, c int) int { return m.fabricGroupOf[level][c] }

// SetEdgeStreams declares the per-edge fabric contention over the routed
// fabric graph: counts[e] is the number of crossing streams touching edge e
// of FabricGraph().Edges(). A transfer is capped by the most contended edge
// on its routed path, so a placement that balances the crossing streams
// across the fabric sustains more bandwidth than one that funnels them
// through a single edge, even at equal total cut. A negative count leaves
// that edge on the global fallback (SetFabricStreams); passing nil reverts
// every edge. A mis-sized slice panics (a programming error, like an
// out-of-range index): zero-filling missing edges would silently model them
// as uncontended. This is the general form behind the per-level
// SetLinkStreams wrapper.
func (m *Machine) SetEdgeStreams(counts []int) {
	if m.fabricGraph == nil {
		panic("numasim: SetEdgeStreams on a single-machine topology (no fabric)")
	}
	if counts != nil && len(counts) != m.fabricGraph.NumEdges() {
		panic(fmt.Sprintf("numasim: SetEdgeStreams got %d counts for %d fabric edges",
			len(counts), m.fabricGraph.NumEdges()))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if counts == nil {
		m.edgeStreams = nil
		return
	}
	// Copy-on-write: effectiveBandwidth snapshots the slice under the lock
	// and reads the snapshot outside, so in-place mutation would race.
	m.edgeStreams = append([]int(nil), counts...)
}

// SetLinkStreams declares the per-link fabric contention of one tree-fabric
// level: counts[i] is the number of crossing streams touching link i of that
// level (level 0: cluster node i's NIC; level 1: rack i's uplink; level 2:
// pod i's uplink). The per-level form is a wrapper over the per-edge storage
// of SetEdgeStreams — the level's links map onto fabric-graph edge ids, so
// the declaration prices identically through the per-edge path. While a
// level's counts are set they take precedence over the global model at that
// level; passing nil reverts the level to whatever SetFabricStreams last
// declared. A mis-sized slice panics (a programming error, like an
// out-of-range index): zero-filling missing links would silently model them
// as uncontended. Shaped (torus/dragonfly) fabrics have no levels — declare
// per-edge counts there.
func (m *Machine) SetLinkStreams(level int, counts []int) {
	if level < 0 || level >= len(m.fabricLevels) {
		panic(fmt.Sprintf("numasim: SetLinkStreams level %d on a %d-level fabric", level, len(m.fabricLevels)))
	}
	if counts != nil && len(counts) != len(m.fabricLevels[level]) {
		panic(fmt.Sprintf("numasim: SetLinkStreams got %d counts for %d links at fabric level %d",
			len(counts), len(m.fabricLevels[level]), level))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.copyEdgeStreamsLocked()
	for g, e := range m.levelEdge[level] {
		if counts == nil {
			next[e] = -1
		} else {
			next[e] = counts[g]
		}
	}
	m.edgeStreams = next
}

// copyEdgeStreamsLocked returns a fresh copy of the per-edge stream counts,
// all unset (-1) when none are declared yet. Copy-on-write: the caller
// installs the copy wholesale, so snapshots taken under the lock stay
// consistent outside it.
func (m *Machine) copyEdgeStreamsLocked() []int {
	next := make([]int, m.fabricGraph.NumEdges())
	if m.edgeStreams == nil {
		for i := range next {
			next[i] = -1
		}
		return next
	}
	copy(next, m.edgeStreams)
	return next
}

// EdgeStreams returns the declared crossing-stream count of fabric-graph
// edge e, falling back to the global fabric-stream count while the edge's
// count is unset.
func (m *Machine) EdgeStreams(e int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.edgeStreams == nil || m.edgeStreams[e] < 0 {
		return m.fabricStreams
	}
	return m.edgeStreams[e]
}

// LinkStreams returns the declared crossing-stream count of link i at the
// given tree-fabric level, falling back to the global fabric-stream count
// while the link's per-edge count is unset.
func (m *Machine) LinkStreams(level, i int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if level >= len(m.levelEdge) || m.edgeStreams == nil {
		return m.fabricStreams
	}
	if s := m.edgeStreams[m.levelEdge[level][i]]; s >= 0 {
		return s
	}
	return m.fabricStreams
}

// SetFabricLinkStreams declares the per-link fabric contention of the NIC
// and rack-uplink levels: nic[c] is the number of crossing streams touching
// cluster node c's NIC link, uplink[r] the number of streams leaving rack r
// over its uplink (ignored on a single-switch fabric; may be nil there).
// Passing a nil nic slice reverts every level to the global model.
//
// Deprecated: use SetLinkStreams, which addresses any fabric depth — this
// wrapper cannot declare pod-uplink counts.
func (m *Machine) SetFabricLinkStreams(nic, uplink []int) {
	if nic == nil {
		m.mu.Lock()
		m.edgeStreams = nil
		m.mu.Unlock()
		return
	}
	if nodes := len(m.topo.ClusterNodes()); len(nic) != nodes {
		panic(fmt.Sprintf("numasim: SetFabricLinkStreams got %d NIC counts for %d cluster nodes", len(nic), nodes))
	}
	if racks := len(m.topo.Racks()); racks > 0 && len(uplink) != racks {
		panic(fmt.Sprintf("numasim: SetFabricLinkStreams got %d uplink counts for %d racks", len(uplink), racks))
	}
	m.SetLinkStreams(0, nic)
	if len(m.topo.Racks()) > 0 {
		m.SetLinkStreams(1, uplink)
	}
}

// NICStreams returns the declared crossing-stream count of cluster node c's
// NIC link, falling back to the global fabric-stream count when no per-link
// counts are set.
func (m *Machine) NICStreams(c int) int { return m.LinkStreams(0, c) }

// UplinkStreams returns the declared crossing-stream count of rack r's
// uplink, falling back to the global fabric-stream count when no per-link
// counts are set (and 0 on a single-switch fabric).
func (m *Machine) UplinkStreams(r int) int {
	if len(m.fabricLevels) < 2 {
		return 0
	}
	return m.LinkStreams(1, r)
}

// ClusterNodeOfPU returns the cluster-node index of a PU (0 on a single
// machine).
func (m *Machine) ClusterNodeOfPU(pu int) int { return m.cnodeOf[pu] }

// ClusterNodeOfNode returns the cluster-node index of a NUMA node (0 on a
// single machine).
func (m *Machine) ClusterNodeOfNode(node int) int { return m.cnodeOfNUMA[node] }

// RackOfClusterNode returns the rack index of a cluster node (0 on a
// single-switch fabric, where every node hangs off one switch).
func (m *Machine) RackOfClusterNode(c int) int {
	if len(m.fabricGroupOf) < 2 {
		return 0
	}
	return m.fabricGroupOf[1][c]
}

// SameRack reports whether two cluster nodes share a top-of-rack switch
// (always true on a single-switch fabric).
func (m *Machine) SameRack(fromC, toC int) bool {
	return len(m.fabricGroupOf) < 2 || m.fabricGroupOf[1][fromC] == m.fabricGroupOf[1][toC]
}

// fabricDivergence returns the first fabric level at which two cluster
// nodes share a group — the level their hop path turns around at. Group
// containment is hierarchical, so every level below it contributes both
// endpoint links to the path, and no level above it contributes any.
// Returns len(fabricLevels) if the nodes share no fabric group at all.
func (m *Machine) fabricDivergence(fromC, toC int) int {
	for l := range m.fabricLevels {
		if m.fabricGroupOf[l][fromC] == m.fabricGroupOf[l][toC] {
			return l
		}
	}
	return len(m.fabricLevels)
}

// fabricLatencyCycles prices the latency of the hop path between two
// distinct cluster nodes: at every level where the nodes' groups differ, the
// message traverses both endpoint links of that level (node → ToR and
// ToR → node; across racks additionally ToR → spine and spine → ToR; across
// pods the pod uplinks on top). On a single-switch fabric this is the
// familiar two-link price. The per-level sums are precomputed in the
// fabricCumLat distance table, so the price is two lookups at the
// divergence level instead of a walk over the fabric tree.
func (m *Machine) fabricLatencyCycles(fromC, toC int) float64 {
	if len(m.fabricLevels) == 0 {
		if m.routingPolicy == RouteValiant {
			var lat float64
			for _, e := range m.RoutedPathEdges(fromC, toC) {
				lat += m.edgeLat[e]
			}
			return lat
		}
		// Shaped fabric: the routed-path latency cache inside the graph
		// (pinned equal to the reference walk over Route).
		return m.fabricGraph.PathLatency(fromC, toC)
	}
	cf, ct := m.fabricCumLat[fromC], m.fabricCumLat[toC]
	for l := range m.fabricLevels {
		if m.fabricGroupOf[l][fromC] == m.fabricGroupOf[l][toC] {
			return cf[l] + ct[l]
		}
	}
	d := len(m.fabricLevels)
	return cf[d] + ct[d]
}

// fabricLatencyCyclesWalk is the reference implementation of
// fabricLatencyCycles: it re-walks the fabric tree per call, reading the
// link attributes off the topology objects. Kept (unexported) for the
// cache-equality test and the cached-vs-walked benchmark.
func (m *Machine) fabricLatencyCyclesWalk(fromC, toC int) float64 {
	if len(m.fabricLevels) == 0 {
		var lat float64
		edges := m.fabricGraph.Edges()
		for _, e := range m.routeWalk(fromC, toC) {
			lat += edges[e].LatencyCycles
		}
		return lat
	}
	var lat float64
	for l, links := range m.fabricLevels {
		gf, gt := m.fabricGroupOf[l][fromC], m.fabricGroupOf[l][toC]
		if gf == gt {
			break
		}
		lat += links[gf].Attr.LatencyCycles + links[gt].Attr.LatencyCycles
	}
	return lat
}

// fabricBandwidth returns the bytes/second a stream between two distinct
// cluster nodes can sustain: the bottleneck over the edges of its routed
// path, each edge's bandwidth shared among the streams declared to cross it
// (per-edge counts from SetEdgeStreams or the SetLinkStreams wrapper), or
// among all crossing streams under the global fallback count
// (SetFabricStreams). The stream-count state is passed in by the caller —
// effectiveBandwidth snapshots it under the machine lock it already holds,
// so the hot path takes the lock once. On tree fabrics the path includes,
// at every fabric level where the endpoints' groups differ, both endpoint
// links of that level, read from the flattened fabricLinkBW table and
// addressed into the per-edge stream storage through levelEdge — the same
// arithmetic the per-level model used. Shaped fabrics bottleneck over the
// routed PathEdges.
func (m *Machine) fabricBandwidth(fromC, toC int, streams []int, global int) float64 {
	bw := math.Inf(1)
	if len(m.fabricLevels) == 0 {
		for _, e := range m.RoutedPathEdges(fromC, toC) {
			ebw := m.edgeBW[e]
			if m.edgeFaultFactor != nil {
				ebw *= m.edgeFaultFactor[e]
			}
			if b := shareLink(ebw, edgeStreamCount(streams, e, global)); b < bw {
				bw = b
			}
		}
		return bw
	}
	d := m.fabricDivergence(fromC, toC)
	for l := 0; l < d; l++ {
		gf, gt := m.fabricGroupOf[l][fromC], m.fabricGroupOf[l][toC]
		for _, g := range [2]int{gf, gt} {
			lbw := m.fabricLinkBW[l][g]
			if m.edgeFaultFactor != nil {
				lbw *= m.edgeFaultFactor[m.levelEdge[l][g]]
			}
			if b := shareLink(lbw, edgeStreamCount(streams, m.levelEdge[l][g], global)); b < bw {
				bw = b
			}
		}
	}
	return bw
}

// fabricBandwidthWalk is the reference implementation of fabricBandwidth,
// reading the link attributes off the topology objects (or the graph's
// uncached Route) per call. Kept (unexported) for the cache-equality test.
func (m *Machine) fabricBandwidthWalk(fromC, toC int, streams []int, global int) float64 {
	bw := math.Inf(1)
	if len(m.fabricLevels) == 0 {
		edges := m.fabricGraph.Edges()
		for _, e := range m.routeWalk(fromC, toC) {
			ebw := edges[e].BandwidthBytesPerSec
			if m.edgeFaultFactor != nil {
				ebw *= m.edgeFaultFactor[e]
			}
			if b := shareLink(ebw, edgeStreamCount(streams, e, global)); b < bw {
				bw = b
			}
		}
		return bw
	}
	for l, links := range m.fabricLevels {
		gf, gt := m.fabricGroupOf[l][fromC], m.fabricGroupOf[l][toC]
		if gf == gt {
			break
		}
		for _, g := range [2]int{gf, gt} {
			lbw := links[g].Attr.BandwidthBytesPerSec
			if m.edgeFaultFactor != nil {
				lbw *= m.edgeFaultFactor[m.levelEdge[l][g]]
			}
			if b := shareLink(lbw, edgeStreamCount(streams, m.levelEdge[l][g], global)); b < bw {
				bw = b
			}
		}
	}
	return bw
}

// edgeStreamCount returns the contention degree of one fabric edge: its
// per-edge count when declared (non-negative), the global fallback
// otherwise.
func edgeStreamCount(streams []int, e, global int) int {
	if streams == nil || streams[e] < 0 {
		return global
	}
	return streams[e]
}

// shareLink divides a link's bandwidth among its crossing streams.
func shareLink(bw float64, streams int) float64 {
	if streams > 1 {
		return bw / float64(streams)
	}
	return bw
}

// effectiveBandwidth returns the bytes/second a stream on pu can sustain
// from the given node: the node's bandwidth divided by its contention
// degree; remote streams are further capped by the hop-degraded link
// bandwidth and by their share of the interconnect fabric. A stream that
// crosses a cluster-node boundary is capped by the bottleneck fabric link on
// its hop path — NICs and, across racks, uplinks, each shared by its
// declared crossing streams — instead of the SMP interconnect model.
func (m *Machine) effectiveBandwidth(pu, node int) float64 {
	nodeObj := m.topo.NUMANodes()[node]
	m.mu.Lock()
	acc := m.accessors[node]
	remote := m.remoteStreams
	// Snapshot the fabric stream state in the same critical section; the
	// slices are replaced wholesale, never mutated in place, so reading the
	// snapshot outside the lock is safe.
	streams, global := m.edgeStreams, m.fabricStreams
	m.mu.Unlock()
	bw := nodeObj.Attr.BandwidthBytesPerSec / float64(acc)
	if m.nodeOf[pu] == node {
		return bw
	}
	if m.cnodeOf[pu] != m.cnodeOfNUMA[node] {
		if link := m.fabricBandwidth(m.cnodeOf[pu], m.cnodeOfNUMA[node], streams, global); link < bw {
			bw = link
		}
		return bw
	}
	if link := m.topo.BandwidthBytesPerSec(m.topo.PU(pu), nodeObj); link < bw {
		bw = link
	}
	if remote > 0 {
		if share := m.cfg.InterconnectBandwidth / float64(remote); share < bw {
			bw = share
		}
	}
	return bw
}

// memLatencyCycles returns the access latency from a PU to a node. Crossing
// a cluster-node boundary charges the fabric's per-link latency on top of
// the target node's memory latency (network cycles instead of the ccNUMA
// hop penalty).
func (m *Machine) memLatencyCycles(pu, node int) float64 {
	local := m.topo.NUMANodes()[m.nodeOf[pu]]
	target := m.topo.NUMANodes()[node]
	base := target.Attr.LatencyCycles
	if local == target {
		return base
	}
	if m.cnodeOf[pu] != m.cnodeOfNUMA[node] {
		return base + m.fabricLatencyCycles(m.cnodeOf[pu], m.cnodeOfNUMA[node])
	}
	hops := m.topo.HopDistance(local, target)
	return base * (1 + float64(hops)/2)
}

// memCostCycles prices moving the given number of bytes between a PU and a
// memory node: one latency plus the streaming time at effective bandwidth.
func (m *Machine) memCostCycles(pu, node int, bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	if m.deadCNode != nil {
		if m.deadCNode[m.cnodeOf[pu]] {
			// A dead PU executes nothing: the access cannot complete.
			// Infinity, not an error — pricing paths are pure cost
			// functions, and an Inf surfaces loudly in any gain comparison
			// or makespan instead of silently pricing the impossible.
			return math.Inf(1)
		}
		if m.deadCNode[m.cnodeOfNUMA[node]] {
			// The source memory died with its node, but its contents
			// survive in the checkpoint store: the access re-materializes
			// the bytes from there instead — the same rule
			// MigrationCostCycles prices an evacuation by, and the reason a
			// surviving task can still read a dead partner's last release.
			node = m.CheckpointNode()
		}
	}
	if m.hasSevered && m.severedPath(m.cnodeOf[pu], m.cnodeOfNUMA[node]) {
		// A severed routed path partitions two live nodes; unlike a kill,
		// neither side's memory is lost, so there is no checkpoint to
		// re-materialize from — the access cannot complete.
		return math.Inf(1)
	}
	bw := m.effectiveBandwidth(pu, node)
	if bw <= 0 {
		return m.memLatencyCycles(pu, node)
	}
	bytesPerCycle := bw / m.clockHz
	return m.memLatencyCycles(pu, node) + bytes/bytesPerCycle
}

// TransferCost prices handing bytes produced on fromPU to a consumer on
// toPU, the cost the ORWL runtime charges when a lock moves between tasks:
//
//   - same PU: free (data already in the local cache);
//   - PUs under a shared cache: that cache's latency plus on-chip bandwidth;
//   - same NUMA node: one memory round through the local node;
//   - remote: one memory round priced at the remote distance;
//   - across a cluster-node boundary: the remote round charges network
//     cycles — per-link fabric latency plus streaming at the link bandwidth
//     — instead of cache or ccNUMA memory cycles (see memLatencyCycles and
//     effectiveBandwidth).
func (m *Machine) TransferCost(fromPU, toPU int, bytes float64) float64 {
	if fromPU == toPU {
		return 0
	}
	if fromPU < 0 || toPU < 0 { // unbound end: price as a remote-ish access
		node := 0
		if toPU >= 0 {
			node = m.nodeOf[toPU]
		} else if fromPU >= 0 {
			node = m.nodeOf[fromPU]
		}
		pu := toPU
		if pu < 0 {
			pu = 0
		}
		return m.memCostCycles(pu, node, bytes)
	}
	a, b := m.topo.PU(fromPU), m.topo.PU(toPU)
	if c := m.topo.SharedCache(a, b); c != nil {
		return c.Attr.LatencyCycles + bytes/m.cfg.CacheBandwidthBytesPerCycle
	}
	// The producer's data sits in (or near) the producer's node; the
	// consumer streams it from there.
	return m.memCostCycles(toPU, m.nodeOf[fromPU], bytes)
}

// MigrationCostCycles predicts what moving a bound execution stream from
// fromPU to toPU costs: the migration penalty plus one pull of the given
// working-set bytes from the old PU's node to the new PU (the region
// re-homing copy plus the cold-cache refill it stands for). It is a pure
// function of the current contention state — the prediction an adaptive
// placement engine weighs against the expected communication gain before
// committing to a re-placement (the actual charges happen in
// Proc.MigrateTo and Proc.MigrateRegion). A negative fromPU (unbound
// stream) prices the pull as a node-0 fetch, the serial-init default.
func (m *Machine) MigrationCostCycles(fromPU, toPU int, workingSetBytes float64) float64 {
	if fromPU == toPU {
		return 0
	}
	fromNode := 0
	if fromPU >= 0 {
		fromNode = m.nodeOf[fromPU]
	}
	// When the source node died its memory is gone, and memCostCycles
	// re-materializes the working set from the checkpoint node instead —
	// the price an evacuation pays.
	return m.cfg.MigrationPenaltyCycles + m.memCostCycles(toPU, fromNode, workingSetBytes)
}

// CheckpointCostCycles prices writing a task's working set out to its own
// node's memory — the checkpoint image a preempting scheduler must persist
// before it reclaims the slot mid-service. The respawn on the new cores is
// priced separately by MigrationCostCycles, which pulls the image from the
// old node; together they are the checkpoint/respawn bill a preempted job
// pays when it restarts. A negative pu (unbound stream) has no dirty state
// to flush and checkpoints for free.
func (m *Machine) CheckpointCostCycles(pu int, workingSetBytes float64) float64 {
	if pu < 0 {
		return 0
	}
	return m.memCostCycles(pu, m.nodeOf[pu], workingSetBytes)
}

// MissFactor returns the fraction of a working set that must be re-streamed
// from memory on every sweep, given the PU's share of the last-level cache:
// 1 when the set does not fit at all, decreasing linearly to
// MinCacheMissFactor when it fits entirely.
func (m *Machine) MissFactor(pu int, workingSet int64) float64 {
	share := m.l3Share[pu]
	if share <= 0 || workingSet <= 0 {
		return 1
	}
	ratio := float64(workingSet) / float64(share)
	if ratio >= 1 {
		return 1
	}
	f := m.cfg.MinCacheMissFactor + (1-m.cfg.MinCacheMissFactor)*ratio
	return f
}

// CyclesToSeconds converts virtual cycles to simulated seconds.
func (m *Machine) CyclesToSeconds(cycles float64) float64 {
	return cycles / m.clockHz
}

// bindPU registers a bound Proc on a PU (for SMT compute inflation).
func (m *Machine) bindPU(pu, delta int) {
	m.mu.Lock()
	m.boundPerPU[pu] += delta
	m.mu.Unlock()
}

// computeInflation returns the compute-cost factor for a PU:
// SMTComputeInflation when at least two distinct PUs of the PU's core are
// occupied by bound Procs (hyperthread resource sharing), 1 otherwise.
func (m *Machine) computeInflation(pu int) float64 {
	if pu < 0 {
		return 1
	}
	m.mu.Lock()
	occupied := 0
	for _, p := range m.pusOfCore[m.coreOf[pu]] {
		if m.boundPerPU[p] > 0 {
			occupied++
		}
	}
	m.mu.Unlock()
	if occupied >= 2 {
		return m.cfg.SMTComputeInflation
	}
	return 1
}
