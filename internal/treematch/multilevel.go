package treematch

import (
	"sort"

	"repro/internal/comm"
)

// Multilevel outer driver of PartitionAcross. Above multilevelMinOrder the
// candidate portfolio is unaffordable — greedy fill, KL refinement and the
// spectral iteration are all superlinear in the fine order — so the
// partitioner switches to the classic multilevel scheme instead: coarsen the
// graph by heavy-edge matching until groups would hold at most
// coarsePerTarget coarse vertices, partition the coarse graph (with the full
// portfolio when it is small enough, greedy seeding otherwise), then
// uncoarsen level by level with boundary-only Kernighan–Lin refinement. KL
// therefore never runs over full groups at the fine level; it only ever
// considers the capped boundary of the capped heaviest cut pairs.
//
// Everything below is deterministic: vertices are visited in index order,
// ties break towards lower indices or earlier portfolio/cut positions, and
// no map iteration order ever reaches a result.
const (
	// multilevelMinOrder is the padded order above which PartitionAcross
	// switches from the candidate portfolio to the multilevel driver. All
	// pre-existing test shapes sit far below it, so their partitions are
	// unchanged bit for bit.
	multilevelMinOrder = 4096
	// coarsePerTarget stops coarsening once a group would hold this many
	// coarse vertices (≈30×k total, per the usual multilevel guideline).
	coarsePerTarget = 30
	// coarsePortfolioMax bounds the coarse order for which the full
	// candidate portfolio (with fine-level KL) still runs.
	coarsePortfolioMax = 2048
	// maxBoundaryPairs caps, per refinement pass, how many group pairs are
	// examined, as a multiple of k (the heaviest cuts win).
	maxBoundaryPairs = 4
	// maxBoundaryCands caps the per-side candidate list of one group pair.
	maxBoundaryCands = 64
	// maxSwapsPerPair bounds the swaps applied to one group pair per pass.
	maxSwapsPerPair = 4
)

// multilevelPartition partitions the (padded) matrix into k groups of
// exactly per entities. Requires per·k == work.Order(). Groups come back
// sorted. The affinity matrix is assumed symmetric (the padded matrices
// PartitionAcross builds are; refinement quality, not correctness, would
// suffer otherwise).
func multilevelPartition(work *comm.Matrix, k, per int, opt Options) ([][]int, error) {
	passes := opt.refinePasses(0)

	// Coarsening: heavy-edge perfect matchings keep every coarse vertex at
	// uniform weight 2^level, so equal coarse groups expand to equal fine
	// groups and the size invariant needs no balancing pass.
	type level struct {
		mat   *comm.Matrix
		pairs [][]int
	}
	var levels []level
	mat := work
	perCur := per
	for perCur > coarsePerTarget && perCur%2 == 0 {
		pairs := heavyEdgeMatching(mat)
		agg, err := mat.Aggregate(pairs)
		if err != nil {
			return nil, err
		}
		levels = append(levels, level{mat: mat, pairs: pairs})
		mat = agg
		perCur /= 2
	}

	// Initial partition of the coarsest graph.
	var groups [][]int
	if mat.Order() <= coarsePortfolioMax {
		var err error
		groups, err = pickPartition(evalPartitionCandidates(
			mat, equalPartitionCandidates(mat, mat.Order(), k, perCur, opt), true))
		if err != nil {
			return nil, err
		}
	} else {
		groups = greedyGroups(mat, perCur, k)
		refineGroupsBoundary(mat, groups, passes)
	}

	// Uncoarsening: expand each coarse vertex into its matched pair and
	// polish the boundary at every level, the fine one included.
	for li := len(levels) - 1; li >= 0; li-- {
		lv := levels[li]
		expanded := make([][]int, len(groups))
		for gi, g := range groups {
			eg := make([]int, 0, 2*len(g))
			for _, e := range g {
				eg = append(eg, lv.pairs[e]...)
			}
			expanded[gi] = eg
		}
		groups = expanded
		refineGroupsBoundary(lv.mat, groups, passes)
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups, nil
}

// heavyEdgeMatching builds a perfect matching of the matrix's entities:
// visit vertices in index order, pair each unmatched vertex with its
// heaviest unmatched neighbor (first-seen wins ties, i.e. the lowest column
// index), and pair the leftover neighborless vertices among themselves in
// index order. Requires an even order; every returned pair is sorted.
func heavyEdgeMatching(m *comm.Matrix) [][]int {
	n := m.Order()
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	pairs := make([][]int, 0, n/2)
	addPair := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		mate[a], mate[b] = b, a
		pairs = append(pairs, []int{a, b})
	}
	for i := 0; i < n; i++ {
		if mate[i] >= 0 {
			continue
		}
		best, bestW := -1, 0.0
		m.ForEachNeighbor(i, func(j int, v float64) {
			if j == i || mate[j] >= 0 {
				return
			}
			if best == -1 || v > bestW {
				best, bestW = j, v
			}
		})
		if best >= 0 {
			addPair(i, best)
		}
	}
	// Leftovers (vertices whose whole neighborhood got matched first, and
	// zero-degree padding) pair up in index order.
	prev := -1
	for i := 0; i < n; i++ {
		if mate[i] >= 0 {
			continue
		}
		if prev < 0 {
			prev = i
			continue
		}
		addPair(prev, i)
		prev = -1
	}
	return pairs
}

// refineGroupsBoundary is the boundary-only KL pass of the multilevel
// driver: per pass, one sweep over the nonzeros finds the cut weight of
// every adjacent group pair; the maxBoundaryPairs·k heaviest pairs each get
// up to maxSwapsPerPair best-gain swaps between their maxBoundaryCands most
// promising boundary members. Group sizes are preserved (only swaps are
// applied). The matrix is assumed symmetric.
func refineGroupsBoundary(m *comm.Matrix, groups [][]int, passes int) {
	k := len(groups)
	if k < 2 || passes <= 0 {
		return
	}
	n := m.Order()
	group := make([]int, n)
	for gi, g := range groups {
		for _, e := range g {
			group[e] = gi
		}
	}
	type gpair struct{ a, b int }
	for pass := 0; pass < passes; pass++ {
		cut := make(map[gpair]float64)
		for i := 0; i < n; i++ {
			m.ForEachNeighbor(i, func(j int, v float64) {
				gi, gj := group[i], group[j]
				if j == i || gi == gj {
					return
				}
				if gi > gj {
					gi, gj = gj, gi
				}
				cut[gpair{gi, gj}] += v
			})
		}
		if len(cut) == 0 {
			return
		}
		pairs := make([]gpair, 0, len(cut))
		for pr := range cut {
			pairs = append(pairs, pr)
		}
		sort.Slice(pairs, func(x, y int) bool {
			cx, cy := cut[pairs[x]], cut[pairs[y]]
			if cx != cy {
				return cx > cy
			}
			if pairs[x].a != pairs[y].a {
				return pairs[x].a < pairs[y].a
			}
			return pairs[x].b < pairs[y].b
		})
		if len(pairs) > maxBoundaryPairs*k {
			pairs = pairs[:maxBoundaryPairs*k]
		}
		improved := false
		for _, pr := range pairs {
			for s := 0; s < maxSwapsPerPair; s++ {
				if !tryBestBoundarySwap(m, groups, group, pr.a, pr.b) {
					break
				}
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// boundaryD returns, for every member x of `members` (all in group own),
// D(x) = W(x, other) − W(x, own): the cut improvement of moving x across,
// ignoring the swap partner. Weights count both directions (v+v, symmetric).
func boundaryD(m *comm.Matrix, members []int, group []int, own, other int) []float64 {
	d := make([]float64, len(members))
	for idx, x := range members {
		var toOther, toOwn float64
		m.ForEachNeighbor(x, func(u int, v float64) {
			if u == x {
				return
			}
			switch group[u] {
			case other:
				toOther += v + v
			case own:
				toOwn += v + v
			}
		})
		d[idx] = toOther - toOwn
	}
	return d
}

// topByD returns the positions of the maxBoundaryCands best members by
// (D desc, entity index asc).
func topByD(g []int, d []float64) []int {
	idx := make([]int, len(g))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(p, q int) bool {
		if d[idx[p]] != d[idx[q]] {
			return d[idx[p]] > d[idx[q]]
		}
		return g[idx[p]] < g[idx[q]]
	})
	if len(idx) > maxBoundaryCands {
		idx = idx[:maxBoundaryCands]
	}
	return idx
}

// tryBestBoundarySwap applies the single best positive-gain swap between
// groups a and b, restricted to each side's top candidate list, and reports
// whether it swapped. The gain of swapping x and y is
// D(x) + D(y) − 2·w(x,y), the standard KL expression.
func tryBestBoundarySwap(m *comm.Matrix, groups [][]int, group []int, a, b int) bool {
	ga, gb := groups[a], groups[b]
	da := boundaryD(m, ga, group, a, b)
	db := boundaryD(m, gb, group, b, a)
	candA := topByD(ga, da)
	candB := topByD(gb, db)
	const eps = 1e-12
	bestGain := eps
	bestXi, bestYi := -1, -1
	for _, xi := range candA {
		x := ga[xi]
		for _, yi := range candB {
			y := gb[yi]
			w := m.At(x, y) + m.At(y, x)
			if gain := da[xi] + db[yi] - (w + w); gain > bestGain {
				bestGain, bestXi, bestYi = gain, xi, yi
			}
		}
	}
	if bestXi < 0 {
		return false
	}
	x, y := ga[bestXi], gb[bestYi]
	ga[bestXi], gb[bestYi] = y, x
	group[x], group[y] = b, a
	return true
}
