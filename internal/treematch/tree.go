// Package treematch implements Algorithm 1 of the paper: a TreeMatch-based
// mapping of a communication matrix onto a hardware topology tree, extended
// to handle oversubscription (more tasks than computing resources) and the
// control threads of the ORWL runtime.
//
// The algorithm works on an abstract balanced tree described only by the
// arity of each internal level; leaves are the computing resources (cores,
// or PUs). Starting from the leaf level, processes are grouped by
// communication affinity into groups whose size is the arity of the level
// above, the matrix is aggregated over the groups, and the procedure recurses
// until the root. The resulting hierarchy of groups is then matched to the
// topology tree, assigning every process to a leaf (MapGroups).
//
// # Objective function and units
//
// The package optimizes a structural objective: minimize the sum over all
// entity pairs of (declared volume in bytes) × (tree hop distance between
// the assigned leaves) — see Cost. The node-level partitioner
// (PartitionAcross) minimizes the cut volume in bytes, preferring, among
// equal cuts, the partition whose most exposed group sends the fewest
// crossing streams. Nothing in this package is priced in cycles: hop
// distances are dimensionless tree metrics, and how many cycles a byte at a
// given distance actually costs is the machine simulator's business
// (internal/numasim). The two views agree on direction but not exactly on
// magnitude — see the discrepancy note in internal/comm's package
// documentation.
package treematch

import (
	"errors"
	"fmt"

	"repro/internal/topology"
)

// ErrUneven marks topologies (or subtrees) whose fan-outs differ within a
// level: TreeMatch's distance model needs a balanced tree, so tree
// derivation rejects them with an error wrapping this sentinel. Callers
// that can degrade gracefully (hierarchical placement skipping the fabric
// matching on an uneven fabric) test for it with errors.Is and propagate
// everything else.
var ErrUneven = errors.New("treematch: uneven topology")

// Tree is the abstract topology tree TreeMatch operates on: a balanced tree
// given by the arity of each internal level. The number of leaves is the
// product of the arities. Tree is immutable; the oversubscription step
// returns a new, deeper tree.
type Tree struct {
	arities []int // arities[d] is the fan-out of nodes at depth d
	leaves  int
	// suffix[d] is the number of leaves below one node at depth d.
	suffix []int
}

// NewTree builds an abstract tree from the fan-out of each internal level,
// root first. Every arity must be positive; a tree with no levels has a
// single leaf (the root itself is the only resource).
func NewTree(arities []int) (*Tree, error) {
	leaves := 1
	for d, a := range arities {
		if a <= 0 {
			return nil, fmt.Errorf("treematch: arity %d at depth %d must be positive", a, d)
		}
		if leaves > 1<<26/a {
			return nil, fmt.Errorf("treematch: tree too large (>%d leaves)", 1<<26)
		}
		leaves *= a
	}
	t := &Tree{arities: append([]int(nil), arities...), leaves: leaves}
	t.suffix = make([]int, len(arities)+1)
	t.suffix[len(arities)] = 1
	for d := len(arities) - 1; d >= 0; d-- {
		t.suffix[d] = t.suffix[d+1] * arities[d]
	}
	return t, nil
}

// FromTopology derives the abstract tree whose leaves are the objects of the
// given kind (typically topology.Core, the paper's computing resource, or
// topology.PU). Levels of arity 1 are collapsed, since they provide no
// placement choice. The i-th leaf of the abstract tree corresponds to the
// i-th object of that kind in the topology's left-to-right order.
func FromTopology(t *topology.Topology, leaf topology.Kind) (*Tree, error) {
	depth := t.DepthOf(leaf)
	if depth < 0 {
		return nil, fmt.Errorf("treematch: topology has no %v level", leaf)
	}
	tree, err := treeBetween(t, 0, depth)
	if err != nil {
		return nil, err
	}
	if tree.Leaves() != len(t.Level(depth)) {
		return nil, fmt.Errorf("treematch: internal error: %d abstract leaves for %d %v objects",
			tree.Leaves(), len(t.Level(depth)), leaf)
	}
	return tree, nil
}

// NodeSubtrees derives one abstract balanced tree per cluster node of a
// clustered topology: the levels strictly below each cluster node down to
// the objects of the given leaf kind. The nodes may differ from each other
// (a heterogeneous platform), but each node's own subtree must be balanced —
// TreeMatch's distance model needs uniform fan-outs within the tree it maps
// onto. On a topology without a cluster level the whole machine is the
// single node. Capacity-aware hierarchical placement maps each node's task
// group onto that node's own subtree with the ordinary Algorithm 1.
func NodeSubtrees(t *topology.Topology, leaf topology.Kind) ([]*Tree, error) {
	clusterDepth := t.DepthOf(topology.Cluster)
	if clusterDepth < 0 {
		tree, err := FromTopology(t, leaf)
		if err != nil {
			return nil, err
		}
		return []*Tree{tree}, nil
	}
	leafDepth := t.DepthOf(leaf)
	if leafDepth < 0 {
		return nil, fmt.Errorf("treematch: topology has no %v level", leaf)
	}
	nodes := t.ClusterNodes()
	trees := make([]*Tree, len(nodes))
	for i, node := range nodes {
		tree, err := subtreeOf(node, leafDepth)
		if err != nil {
			return nil, fmt.Errorf("treematch: cluster node %d: %w", i, err)
		}
		trees[i] = tree
	}
	return trees, nil
}

// subtreeOf builds the abstract balanced tree rooted at one topology object,
// down to the given absolute depth: the per-depth fan-outs become the
// arities (arity-1 levels collapsed), with every object at a depth required
// to share its fan-out within this subtree only.
func subtreeOf(root *topology.Object, toDepth int) (*Tree, error) {
	var arities []int
	level := []*topology.Object{root}
	for d := root.Depth; d < toDepth; d++ {
		a := len(level[0].Children)
		var next []*topology.Object
		for _, o := range level {
			if len(o.Children) != a {
				return nil, fmt.Errorf("%w: %v has %d children, siblings have %d",
					ErrUneven, o, len(o.Children), a)
			}
			next = append(next, o.Children...)
		}
		if a > 1 {
			arities = append(arities, a)
		}
		level = next
	}
	return NewTree(arities)
}

// NodeSubtree derives the abstract balanced tree of one cluster node of a
// clustered topology: the levels strictly below the cluster level down to
// the objects of the given leaf kind. All cluster nodes must be identical
// (the level-wide fan-out check covers every node's subtree). On a topology
// without a cluster level it is equivalent to FromTopology: the whole
// machine is the single node. Hierarchical two-level placement maps each
// node's task group onto this subtree with the ordinary Algorithm 1.
//
// Deprecated: use NodeSubtrees, which additionally handles heterogeneous
// platforms by returning one tree per node.
func NodeSubtree(t *topology.Topology, leaf topology.Kind) (*Tree, error) {
	clusterDepth := t.DepthOf(topology.Cluster)
	if clusterDepth < 0 {
		return FromTopology(t, leaf)
	}
	leafDepth := t.DepthOf(leaf)
	if leafDepth < 0 {
		return nil, fmt.Errorf("treematch: topology has no %v level", leaf)
	}
	tree, err := treeBetween(t, clusterDepth, leafDepth)
	if err != nil {
		return nil, err
	}
	nodes := len(t.ClusterNodes())
	if tree.Leaves()*nodes != len(t.Level(leafDepth)) {
		return nil, fmt.Errorf("treematch: internal error: %d abstract leaves per node for %d %v objects on %d nodes",
			tree.Leaves(), len(t.Level(leafDepth)), leaf, nodes)
	}
	return tree, nil
}

// FabricTree derives the abstract balanced tree of the interconnect fabric
// of a clustered topology: its leaves are the cluster nodes, its internal
// levels the switch tiers above them (the machine root as the spine, racks
// as top-of-rack switches). On a flat single-switch fabric the tree has a
// single level whose arity is the node count — every permutation of leaves
// prices identically there, which is why hierarchical placement only runs a
// group→node matching when the fabric has at least two tiers. Mapping the
// aggregated group-to-group matrix onto this tree (MapMatrix) is the top
// stage of three-level placement: racks, then nodes, then cores.
func FabricTree(t *topology.Topology) (*Tree, error) {
	clusterDepth := t.DepthOf(topology.Cluster)
	if clusterDepth < 0 {
		return nil, fmt.Errorf("treematch: topology has no cluster level, so no fabric tree")
	}
	tree, err := treeBetween(t, 0, clusterDepth)
	if err != nil {
		return nil, err
	}
	// treeBetween collapses arity-1 tiers, which only drop factors of 1, so
	// the leaf count always equals the cluster-node count; the check is a
	// defensive invariant, mirroring FromTopology and NodeSubtree.
	if tree.Leaves() != len(t.ClusterNodes()) {
		return nil, fmt.Errorf("treematch: internal error: fabric tree has %d leaves for %d cluster nodes",
			tree.Leaves(), len(t.ClusterNodes()))
	}
	return tree, nil
}

// treeBetween builds the abstract tree spanned by the topology levels
// [fromDepth, toDepth): the fan-outs of those levels become the arities,
// with arity-1 levels collapsed (they provide no placement choice, and the
// collapsed levels contribute a factor of 1 to the leaf count).
func treeBetween(t *topology.Topology, fromDepth, toDepth int) (*Tree, error) {
	var arities []int
	for d := fromDepth; d < toDepth; d++ {
		// TreeMatch's distance model needs a balanced tree: every object of
		// a level must have the same fan-out. Uneven machines (representable
		// since the spec grammar grew comma counts) are rejected explicitly —
		// a first-object arity product that happens to match the leaf count
		// would otherwise model the wrong locality.
		a := t.Arity(d)
		for _, o := range t.Level(d) {
			if len(o.Children) != a {
				return nil, fmt.Errorf("%w: %v has %d children, siblings have %d",
					ErrUneven, o, len(o.Children), a)
			}
		}
		if a > 1 {
			arities = append(arities, a)
		}
	}
	return NewTree(arities)
}

// Depth returns the number of levels including the leaf level; a tree with
// no internal levels has depth 1.
func (t *Tree) Depth() int { return len(t.arities) + 1 }

// Leaves returns the number of leaves (computing resources).
func (t *Tree) Leaves() int { return t.leaves }

// Arity returns the fan-out of nodes at the given internal depth.
func (t *Tree) Arity(depth int) int { return t.arities[depth] }

// Arities returns a copy of the per-level fan-outs, root first.
func (t *Tree) Arities() []int { return append([]int(nil), t.arities...) }

// Extend returns a new tree with an extra bottom level of the given arity:
// every leaf gains `arity` virtual children. This is the
// manage_oversubscription step: virtual resources let the grouping proceed
// when there are more processes than physical leaves.
func (t *Tree) Extend(arity int) (*Tree, error) {
	if arity <= 0 {
		return nil, fmt.Errorf("treematch: extension arity %d must be positive", arity)
	}
	return NewTree(append(t.Arities(), arity))
}

// Restrict returns a tree with at least minLeaves leaves in which the
// deepest levels' arities are reduced as much as possible. This implements
// the paper's distribution requirement ("we cluster threads that share
// data, and at the same time, distribute threads over NUMA nodes"): when
// there are fewer processes than leaves, shrinking the per-node capacity
// forces the mapping to spread groups across the upper levels (NUMA nodes)
// instead of piling communicating groups onto one socket. The original
// tree is unchanged.
func (t *Tree) Restrict(minLeaves int) (*Tree, error) {
	if minLeaves <= 0 {
		return nil, fmt.Errorf("treematch: Restrict needs a positive target, got %d", minLeaves)
	}
	if minLeaves >= t.leaves {
		return t, nil
	}
	arities := t.Arities()
	for {
		reduced := false
		// Reduce the deepest reducible level first: capacity shrinks close
		// to the leaves, spreading load across the levels above.
		for d := len(arities) - 1; d >= 0; d-- {
			if arities[d] <= 1 {
				continue
			}
			leaves := 1
			for i, a := range arities {
				if i == d {
					a--
				}
				leaves *= a
			}
			if leaves >= minLeaves {
				arities[d]--
				reduced = true
				break
			}
		}
		if !reduced {
			return NewTree(arities)
		}
	}
}

// AncestorIndex returns the index, among all nodes at the given depth, of
// the ancestor of the given leaf. Depth 0 is the root (always index 0);
// depth Depth()-1 is the leaf itself.
func (t *Tree) AncestorIndex(leaf, depth int) int {
	return leaf / t.suffix[depth]
}

// LCADepth returns the depth of the lowest common ancestor of two leaves.
func (t *Tree) LCADepth(a, b int) int {
	if a == b {
		return t.Depth() - 1
	}
	d := t.Depth() - 2
	for d >= 0 && t.AncestorIndex(a, d) != t.AncestorIndex(b, d) {
		d--
	}
	return d
}

// LeafDistance returns the hop distance between two leaves: the number of
// tree edges on the path between them (0 for the same leaf). TreeMatch
// minimizes communication weighted by this distance.
func (t *Tree) LeafDistance(a, b int) int {
	return 2 * (t.Depth() - 1 - t.LCADepth(a, b))
}

// String renders the arity list, e.g. "tree[24 8]" for the paper's machine.
func (t *Tree) String() string {
	return fmt.Sprintf("tree%v", t.arities)
}

// EmbedLeaf maps a leaf index of a restricted tree (obtained from
// orig.Restrict) back onto the leaf of the original tree it occupies: each
// restricted node stands for the same-position node of the original, using
// its first children. Both trees must have the same depth with
// restricted.Arity(d) <= orig.Arity(d) at every level.
func EmbedLeaf(orig, restricted *Tree, leaf int) (int, error) {
	if orig.Depth() != restricted.Depth() {
		return 0, fmt.Errorf("treematch: EmbedLeaf depth mismatch %d vs %d", orig.Depth(), restricted.Depth())
	}
	if leaf < 0 || leaf >= restricted.Leaves() {
		return 0, fmt.Errorf("treematch: EmbedLeaf leaf %d out of range", leaf)
	}
	out := 0
	rest := leaf
	for d := 0; d < len(restricted.arities); d++ {
		digit := rest / restricted.suffix[d+1]
		rest %= restricted.suffix[d+1]
		if digit >= orig.arities[d] {
			return 0, fmt.Errorf("treematch: EmbedLeaf arity overflow at depth %d", d)
		}
		out += digit * orig.suffix[d+1]
	}
	return out, nil
}

// embedMapping rewrites a Mapping's leaf indices from the restricted tree's
// leaf space into the original tree's. A no-op when both trees coincide.
func embedMapping(orig, restricted *Tree, mp *Mapping) {
	if orig == restricted {
		return
	}
	for i, leaf := range mp.Assignment {
		out, err := EmbedLeaf(orig, restricted, leaf)
		if err != nil {
			// Restrict preserves depth and never increases arities, so this
			// is unreachable; panic loudly rather than corrupt a mapping.
			panic(err)
		}
		mp.Assignment[i] = out
	}
}
