package treematch

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/topology"
)

func TestNodeSubtree(t *testing.T) {
	topo, err := topology.FromSpec("node:4 pack:2 core:8")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NodeSubtree(topo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Leaves(); got != 16 {
		t.Fatalf("per-node subtree has %d leaves, want 16", got)
	}
	// The subtree must not contain the cluster arity.
	full, err := FromTopology(topo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if full.Leaves() != 64 {
		t.Fatalf("full tree has %d leaves, want 64", full.Leaves())
	}
}

func TestNodeSubtreeSingleMachine(t *testing.T) {
	topo, err := topology.FromSpec("pack:2 core:4")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NodeSubtree(topo, topology.Core)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Leaves(); got != 8 {
		t.Fatalf("single-machine subtree has %d leaves, want 8", got)
	}
}

func TestNodeSubtreeUnevenRejected(t *testing.T) {
	topo, err := topology.FromSpec("node:2 pack:2 core:4,4,2,4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NodeSubtree(topo, topology.Core); err == nil {
		t.Fatal("uneven cluster accepted")
	}
}

func TestPartitionAcrossLattice(t *testing.T) {
	// An 8x4 lattice with uniform edges: the optimal 4-way partition cuts
	// 12 edges (4 vertical 2x4 stripes). The portfolio partitioner must
	// find a 12-edge cut.
	m := comm.Stencil2D(8, 4, 1000, 0)
	groups, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := m.TotalVolume()
	intra := intraVolume(m, groups)
	cutEdges := (total - intra) / 2000 // each cut edge carries 1000 both ways
	if cutEdges > 12 {
		t.Errorf("4-way partition of the 8x4 lattice cuts %.0f edges, want <= 12", cutEdges)
	}
	for gi, g := range groups {
		if len(g) != 8 {
			t.Errorf("group %d has %d members, want 8", gi, len(g))
		}
	}
}

func TestPartitionAcrossUnevenOrder(t *testing.T) {
	// 10 entities across 4 groups: capacity ceil(10/4)=3, padding stripped.
	m := comm.Ring(10, 100)
	groups, err := PartitionAcross(m, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("%d groups, want 4", len(groups))
	}
	seen := make([]bool, 10)
	for _, g := range groups {
		if len(g) > 3 {
			t.Errorf("group of %d exceeds capacity 3", len(g))
		}
		for _, e := range g {
			if seen[e] {
				t.Fatalf("entity %d in two groups", e)
			}
			seen[e] = true
		}
	}
	for e, ok := range seen {
		if !ok {
			t.Errorf("entity %d not assigned", e)
		}
	}
}

func TestPartitionAcrossDegenerate(t *testing.T) {
	if _, err := PartitionAcross(comm.New(4), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	groups, err := PartitionAcross(comm.New(0), 3, Options{})
	if err != nil || len(groups) != 3 {
		t.Errorf("empty matrix: groups=%v err=%v", groups, err)
	}
	// k=1: everything in one group.
	groups, err = PartitionAcross(comm.Ring(5, 10), 1, Options{})
	if err != nil || len(groups) != 1 || len(groups[0]) != 5 {
		t.Errorf("k=1: groups=%v err=%v", groups, err)
	}
}

// TestPartitionAcrossConcurrentMatchesSequential pins that the concurrent
// candidate-portfolio evaluation is bit-identical to a sequential pass over
// the same portfolio: the candidates are independent and the best-pick runs
// in fixed candidate order, so parallelism must not be observable in the
// result. (PartitionAcross evaluates concurrently; the sequential arm here
// drives the identical portfolio through the same scorer one by one.)
func TestPartitionAcrossConcurrentMatchesSequential(t *testing.T) {
	matrices := map[string]*comm.Matrix{
		"lattice8x8": comm.Stencil2D(8, 8, 100, 0),
		"lattice6x4": comm.Stencil2D(6, 4, 100, 10),
		"ring30":     comm.Ring(30, 64),
		"random24":   comm.Random(24, 0.4, 1000, 7),
		"random36":   comm.Random(36, 0.25, 512, 11),
	}
	for name, m := range matrices {
		for _, k := range []int{2, 3, 4} {
			per := (m.Order() + k - 1) / k
			work := m
			if per*k > m.Order() {
				var err error
				work, err = m.ExtendZero(per * k)
				if err != nil {
					t.Fatal(err)
				}
			}
			seq, err := pickPartition(evalPartitionCandidates(work, equalPartitionCandidates(work, m.Order(), k, per, Options{}), false))
			if err != nil {
				t.Fatalf("%s k=%d sequential: %v", name, k, err)
			}
			conc, err := PartitionAcross(m, k, Options{})
			if err != nil {
				t.Fatalf("%s k=%d concurrent: %v", name, k, err)
			}
			// Strip the padding from the sequential result the same way
			// PartitionAcross does before comparing.
			want := make([][]int, k)
			for gi, g := range seq {
				for _, e := range g {
					if e < m.Order() {
						want[gi] = append(want[gi], e)
					}
				}
			}
			if !reflect.DeepEqual(conc, want) {
				t.Errorf("%s k=%d: concurrent %v != sequential %v", name, k, conc, want)
			}
		}
	}
}

// TestPartitionAcrossWeightedConcurrentMatchesSequential is the same pin for
// the capacity-weighted portfolio.
func TestPartitionAcrossWeightedConcurrentMatchesSequential(t *testing.T) {
	m := comm.Random(24, 0.5, 2048, 3)
	caps := []int{8, 4, 4}
	sizes := weightedSizes(m.Order(), caps)
	passes := Options{}.refinePasses(0)
	refine := func(groups [][]int) [][]int {
		if passes > 0 && len(caps) > 1 {
			refineGroups(m, groups, passes)
		}
		return groups
	}
	cands := []partitionCandidate{
		func() ([][]int, error) { return refine(greedySizedGroups(m, sizes)), nil },
		func() ([][]int, error) {
			groups, err := spectralPartitionSized(m, identityIDs(m.Order()), sizes)
			if err != nil {
				return nil, err
			}
			return refine(groups), nil
		},
	}
	seq, err := pickPartition(evalPartitionCandidates(m, cands, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range seq {
		sort.Ints(g)
	}
	conc, err := PartitionAcrossWeighted(m, caps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(conc, seq) {
		t.Errorf("concurrent %v != sequential %v", conc, seq)
	}
}

// TestSpectralCandidateSkippedOnPaddedMatrices pins the portfolio's
// no-padding guard: spectral bisection joins the candidate list only when
// per·k equals the unpadded order, because zero-volume padding entities
// drown the Fiedler direction. The guard compares against the original
// order, not the padded working matrix's.
func TestSpectralCandidateSkippedOnPaddedMatrices(t *testing.T) {
	m := comm.Random(30, 0.4, 1000, 5)
	work, err := m.ExtendZero(32) // k=4 pads 30 entities to 32
	if err != nil {
		t.Fatal(err)
	}
	padded := equalPartitionCandidates(work, 30, 4, 8, Options{})
	exact := equalPartitionCandidates(work, 32, 4, 8, Options{})
	if len(exact) != len(padded)+1 {
		t.Errorf("padded portfolio has %d candidates, exact %d; spectral must only join the exact one",
			len(padded), len(exact))
	}
}
