package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/topology"
)

// simRuntimeKernels builds a runtime on a small simulated machine.
func simRuntimeKernels(t *testing.T) *orwl.Runtime {
	t.Helper()
	top, err := topology.FromSpec("pack:2 l3:1 core:4 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	mach, err := numasim.New(top, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return orwl.NewRuntime(orwl.Options{Machine: mach, Seed: 5})
}

// TestORWLMatchesSequentialRandomShapes drives the block-parallel ORWL
// implementation against the sequential reference on randomized grid and
// partition shapes — a property-based sweep over the decomposition logic
// (uneven splits, extreme aspect ratios, 1-wide blocks).
func TestORWLMatchesSequentialRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		rows := 6 + rng.Intn(18)
		cols := 6 + rng.Intn(18)
		bx := 1 + rng.Intn(4)
		by := 1 + rng.Intn(4)
		if bx > cols {
			bx = cols
		}
		if by > rows {
			by = rows
		}
		iters := 1 + rng.Intn(4)
		g := NewGrid(rows, cols, int64(trial))
		want := RunJacobiLK23(g, iters)
		got := runORWL(t, g, bx, by, iters, nil)
		if !got.Equal(want, 0) {
			t.Fatalf("trial %d (%dx%d grid, %dx%d blocks, %d iters): max diff %g",
				trial, rows, cols, bx, by, iters, got.MaxAbsDiff(want))
		}
	}
}

// TestExtractStrip pins the strip extraction geometry exactly.
func TestExtractStrip(t *testing.T) {
	// 3x4 block with cells numbered 0..11 row-major.
	b := Block{R0: 0, C0: 0, H: 3, W: 4}
	za := make([]float64, 12)
	for i := range za {
		za[i] = float64(i)
	}
	cases := []struct {
		d    comm.Frontier
		want []float64
	}{
		{comm.OpN, []float64{0, 1, 2, 3}},
		{comm.OpS, []float64{8, 9, 10, 11}},
		{comm.OpE, []float64{3, 7, 11}},
		{comm.OpW, []float64{0, 4, 8}},
		{comm.OpNE, []float64{3}},
		{comm.OpNW, []float64{0}},
		{comm.OpSE, []float64{11}},
		{comm.OpSW, []float64{8}},
	}
	for _, tc := range cases {
		dst := make([]float64, stripLen(b, tc.d))
		extractStrip(b, za, tc.d, dst)
		for i := range tc.want {
			if dst[i] != tc.want[i] {
				t.Errorf("%v strip = %v, want %v", tc.d, dst, tc.want)
				break
			}
		}
	}
}

// TestOppositeInvolution: opposite is a self-inverse permutation of the
// eight directions.
func TestOppositeInvolution(t *testing.T) {
	for d := comm.OpN; d <= comm.OpSW; d++ {
		if opposite(opposite(d)) != d {
			t.Errorf("opposite(opposite(%v)) = %v", d, opposite(opposite(d)))
		}
		if opposite(d) == d {
			t.Errorf("opposite(%v) is itself", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("opposite(main) did not panic")
		}
	}()
	opposite(comm.OpMain)
}

// TestFrontierDirsConsistent: the direction table and opposite() agree:
// walking d then opposite(d) returns to the start.
func TestFrontierDirsConsistent(t *testing.T) {
	for d := comm.OpN; d <= comm.OpSW; d++ {
		v := frontierDirs[d]
		o := frontierDirs[opposite(d)]
		if v[0]+o[0] != 0 || v[1]+o[1] != 0 {
			t.Errorf("%v=%v and %v=%v are not inverse offsets", d, v, opposite(d), o)
		}
	}
}

// TestMeasuredCommMatchesStructuralLK23 cross-validates three independent
// derivations of the LK23 communication pattern: the synthetic generator
// (comm.LK23OpLevel), the structural extraction from the program
// (CommMatrix — the placement module's input), and the volumes actually
// observed during execution (MeasuredCommMatrix). Per iteration the
// measured volumes equal the structural ones, except that block-interior
// strips flow only from iteration 1 on (iteration 0 reads the preset
// blocks, produced by nobody).
func TestMeasuredCommMatchesStructuralLK23(t *testing.T) {
	const iters = 6
	rt := orwl.NewRuntime(orwl.Options{})
	g := NewGrid(12, 12, 31)
	prog, err := Build(rt, 12, 12, BuildOptions{
		BX: 2, BY: 2, Iters: iters, Costs: LK23Costs, Grid: g, Cell: g.Cell,
	})
	if err != nil {
		t.Fatal(err)
	}
	structural := rt.CommMatrix()
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	measured := rt.MeasuredCommMatrix()
	for i := 0; i < measured.Order(); i++ {
		for j := 0; j < measured.Order(); j++ {
			if i == j {
				continue
			}
			per := structural.At(i, j)
			got := measured.At(i, j)
			// Main↔frontier volume through the block location starts at
			// iteration 1 (N-1 handoffs); frontier↔neighbour-main volume
			// through the frontier location flows every iteration (N).
			wantLo, wantHi := per*float64(iters-1), per*float64(iters)
			if got < wantLo-1e-9 || got > wantHi+1e-9 {
				t.Errorf("measured(%s,%s) = %v, want in [%v,%v] (structural %v/iter)",
					structural.Label(i), structural.Label(j), got, wantLo, wantHi, per)
			}
		}
	}
	_ = prog
}

// TestCostOnlyAndRealChargeSameSimTime: the cost-only mode must price an
// identical program identically to the real-arithmetic mode (the arithmetic
// must not leak into the virtual clock).
func TestCostOnlyAndRealChargeSameSimTime(t *testing.T) {
	run := func(real bool) float64 {
		rt := simRuntimeKernels(t)
		opts := BuildOptions{BX: 2, BY: 2, Iters: 3, Costs: LK23Costs}
		if real {
			g := NewGrid(16, 16, 4)
			opts.Grid = g
			opts.Cell = g.Cell
		}
		prog, err := Build(rt, 16, 16, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, task := range prog.Tasks {
			if err := rt.Bind(task, i%rt.Machine().Topology().NumPUs()); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.MakespanCycles()
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("cost-only %v != real %v simulated cycles", a, b)
	}
}
