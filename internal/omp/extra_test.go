package omp

import (
	"testing"

	"repro/internal/kernels"
)

// TestBoundTeamJacobiMatchesSequential: the affinity-aware team variant
// used by ablations must also preserve the numerics.
func TestBoundTeamJacobiMatchesSequential(t *testing.T) {
	m := testMachine(t, "pack:2 core:4 pu:1")
	team, err := NewBoundTeam(m, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	g := kernels.NewGrid(16, 12, 8)
	region := m.AllocFirstTouch("grid", 1<<20)
	got := Jacobi(team, g, g.Cell, kernels.LK23Costs, 4, Dynamic, 2, region)
	want := kernels.RunJacobiLK23(g, 4)
	if !got.Equal(want, 0) {
		t.Errorf("bound-team Jacobi differs (max %g)", got.MaxAbsDiff(want))
	}
	// Bound threads never migrate.
	for tid := 0; tid < team.Size(); tid++ {
		if team.Proc(tid).Stats().Migrations != 0 {
			t.Errorf("bound thread %d migrated", tid)
		}
	}
}

// TestGuidedVirtualDeterministicAndCovering: guided scheduling under
// virtual time is deterministic and covers the space exactly.
func TestGuidedVirtualDeterministicAndCovering(t *testing.T) {
	run := func() (float64, []int) {
		m := testMachine(t, "pack:2 core:2 pu:1")
		team, err := NewTeam(m, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		hits := make([]int, 200)
		for r := 0; r < 3; r++ {
			team.ParallelFor(0, 200, 2, Guided, func(lo, hi, tid int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				team.Proc(tid).ComputeCycles(float64(hi - lo))
			})
		}
		return team.MakespanCycles(), hits
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 {
		t.Errorf("guided virtual makespan differs: %v vs %v", c1, c2)
	}
	for i := range h1 {
		if h1[i] != 3 || h2[i] != 3 {
			t.Fatalf("index %d executed %d/%d times, want 3", i, h1[i], h2[i])
		}
	}
}

// TestBoundTeamSMTInflation: a bound team on both hyperthreads of a core
// computes slower per thread than one spread across cores.
func TestBoundTeamSMTInflation(t *testing.T) {
	mShared := testMachine(t, "pack:1 core:2 pu:2")
	shared, err := NewBoundTeam(mShared, []int{0, 1}) // same core
	if err != nil {
		t.Fatal(err)
	}
	mSpread := testMachine(t, "pack:1 core:2 pu:2")
	spread, err := NewBoundTeam(mSpread, []int{0, 2}) // different cores
	if err != nil {
		t.Fatal(err)
	}
	body := func(team *Team) {
		team.ParallelFor(0, 2, 0, Static, func(lo, hi, tid int) {
			team.Proc(tid).Compute(1e6)
		})
	}
	body(shared)
	body(spread)
	if shared.MakespanCycles() <= spread.MakespanCycles() {
		t.Errorf("hyperthread-shared team %v not slower than spread %v",
			shared.MakespanCycles(), spread.MakespanCycles())
	}
}

// TestParallelForSingleThread: a one-thread team degenerates gracefully.
func TestParallelForSingleThread(t *testing.T) {
	m := testMachine(t, "core:1")
	team, err := NewTeam(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	team.ParallelFor(0, 10, 3, Dynamic, func(lo, hi, tid int) {
		if tid != 0 {
			t.Errorf("tid = %d", tid)
		}
		sum += hi - lo
	})
	if sum != 10 {
		t.Errorf("covered %d of 10", sum)
	}
}
