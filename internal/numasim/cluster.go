package numasim

import (
	"fmt"
	"strings"

	"repro/internal/topology"
)

// Cluster is a simulated multi-machine cluster: a set of identical member
// Machines joined by an interconnect fabric priced with per-link latency and
// bandwidth. The cluster is simulated through a single fused Machine whose
// topology carries a cluster level above the per-node trees, so that lock
// handoffs and region pulls crossing a node boundary charge network cycles
// instead of cache or memory cycles (see Machine.TransferCost). The member
// Machines expose each node's shared-memory view for per-node placement
// (hierarchical TreeMatch runs Algorithm 1 on one member's topology).
type Cluster struct {
	fused   *Machine
	members []*Machine
	fabric  Fabric
}

// Fabric describes the cluster interconnect. Zero fields take the defaults
// of topology.DefaultAttrs (a 2016-era 10-Gigabit-Ethernet class network).
type Fabric struct {
	// LinkLatencyCycles is the latency of one fabric link in CPU cycles; a
	// message between two nodes of a flat cluster traverses two links.
	LinkLatencyCycles float64
	// LinkBandwidthBytesPerSec is the bandwidth of one fabric link.
	LinkBandwidthBytesPerSec float64
}

// NewCluster builds a cluster of n identical machines, each described by
// nodeSpec (a single-machine topology spec; it must not itself contain a
// cluster level). The fused simulation machine is built over the spec
// "cluster:n nodeSpec" with the fabric's link attributes on the cluster
// level.
func NewCluster(n int, nodeSpec string, fabric Fabric, cfg Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("numasim: cluster needs at least 1 node, got %d", n)
	}
	def := topology.DefaultAttrs()
	if fabric.LinkLatencyCycles > 0 {
		def.NetLatencyCycles = fabric.LinkLatencyCycles
	}
	if fabric.LinkBandwidthBytesPerSec > 0 {
		def.NetBandwidth = fabric.LinkBandwidthBytesPerSec
	}
	fabric = Fabric{def.NetLatencyCycles, def.NetBandwidth}

	member, err := topology.FromSpecAttrs(nodeSpec, def)
	if err != nil {
		return nil, fmt.Errorf("numasim: cluster node spec: %w", err)
	}
	if len(member.ClusterNodes()) > 0 {
		return nil, fmt.Errorf("numasim: node spec %q already contains a cluster level", nodeSpec)
	}
	fusedTopo, err := topology.FromSpecAttrs(fmt.Sprintf("cluster:%d %s", n, member.Spec()), def)
	if err != nil {
		return nil, fmt.Errorf("numasim: fused cluster spec: %w", err)
	}
	fused, err := New(fusedTopo, cfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{fused: fused, fabric: fabric}
	for i := 0; i < n; i++ {
		mm, err := New(member, cfg)
		if err != nil {
			return nil, err
		}
		c.members = append(c.members, mm)
		if i+1 < n {
			// Each member gets its own topology instance so per-node state
			// (accessors, bound Procs) stays independent.
			member, err = topology.FromSpecAttrs(member.Spec(), def)
			if err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// ClusterFromSpec builds a cluster from a full cluster topology spec such as
// "node:4 pack:2 core:8" or "cluster:2 core:16". A spec without a cluster
// level yields a single-node cluster.
func ClusterFromSpec(spec string, fabric Fabric, cfg Config) (*Cluster, error) {
	t, err := topology.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	n := t.NumClusterNodes()
	nodeSpec := t.Spec()
	if len(t.ClusterNodes()) > 0 {
		// Strip the leading "cluster:N" token of the normalized spec to
		// recover the per-node machine spec.
		fields := strings.Fields(nodeSpec)
		if strings.Contains(fields[0], ",") {
			return nil, fmt.Errorf("numasim: uneven cluster level %q is not supported", fields[0])
		}
		nodeSpec = strings.Join(fields[1:], " ")
	}
	return NewCluster(n, nodeSpec, fabric, cfg)
}

// Machine returns the fused cluster-wide simulation machine the runtime
// executes on: PUs, cores and NUMA nodes of all members in left-to-right
// order, with fabric-priced cross-node costs.
func (c *Cluster) Machine() *Machine { return c.fused }

// Nodes returns the number of cluster nodes.
func (c *Cluster) Nodes() int { return len(c.members) }

// Node returns the i-th member machine: the shared-memory view of one
// cluster node, used for per-node placement.
func (c *Cluster) Node(i int) *Machine { return c.members[i] }

// Fabric returns the effective interconnect parameters.
func (c *Cluster) Fabric() Fabric { return c.fabric }

// NodeOfPU returns the cluster-node index owning a fused-machine PU.
func (c *Cluster) NodeOfPU(pu int) int { return c.fused.ClusterNodeOfPU(pu) }
