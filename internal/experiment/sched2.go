package experiment

import (
	"fmt"
	"time"

	"repro/internal/numasim"
	"repro/internal/sched"
	"repro/internal/topology"
)

// The phase-2 scheduler ablation (A16) keeps A15's topology-aware placement
// fixed and varies the queueing policies layered on top of it: "fifo" is the
// plain A15 topo-aware arm (a blocked required-constrained head stalls the
// whole queue), "backfill" adds conservative backfill (small jobs jump the
// head only when their whole modeled service fits inside the head's
// earliest-feasible-start window, so the head is never delayed), and "full"
// additionally enables priority preemption (a required-constrained arrival
// checkpoints-and-requeues strictly-lower-priority jobs, charged at
// checkpoint/respawn cost) and hysteresis-gated defragmentation (migrate one
// running job to compact a domain, committing only when the head's wait
// saving beats the migration bill). The metric is again the aggregate of job
// cycle times, so every policy must pay for itself: an eviction or a
// migration that costs more than the wait it saves worsens the arm.

// Sched2Modes lists the arms of the phase-2 scheduler ablation in report
// order.
func Sched2Modes() []string {
	return []string{"full", "backfill", "fifo"}
}

// Sched2Config parameterizes the A16 ablation grid. The stream is harsher
// than A15's: higher churn (deeper queues give backfill windows to fill) and
// a priority mix in which the required-constrained jobs outrank the
// unconstrained background (so preemption has lawful victims).
type Sched2Config struct {
	// Shapes and Seeds span the grid (defaults match A15: a two-rack and
	// a two-pod machine × seeds 7 and 42).
	Shapes []string
	Seeds  []int64
	// Stream knobs (see sched.StreamConfig); zero values pick the
	// defaults noted at withDefaults.
	Jobs               int
	Sizes              []int
	Churn              float64
	ConstraintFraction float64
	PriorityClasses    int
	PreferredTier      string
	RequiredTier       string
	WorkCycles         float64
	VolumeBytes        float64
	LongFraction       float64
	LongFactor         float64
	// DefragThreshold arms the full arm's defragmentation (fragmentation
	// weight in [0,1]; negative means 0 = always armed when the head is
	// blocked).
	DefragThreshold float64
	// Fit and Queue are shared by every arm (defaults: best-fit, wait).
	Fit   sched.Fit
	Queue sched.QueuePolicy
}

func (c Sched2Config) withDefaults() Sched2Config {
	if c.Shapes == nil {
		c.Shapes = []string{
			"rack:2 node:4 pack:2 core:4 pu:1",
			"pod:2 rack:2 node:2 pack:2 core:4 pu:1",
		}
	}
	if c.Seeds == nil {
		c.Seeds = []int64{8, 37}
	}
	if c.Jobs == 0 {
		c.Jobs = 48
	}
	if c.Sizes == nil {
		// A16's mix skews smaller than A15's: the short tail is what
		// backfill packs into a blocked head's window, and cheap
		// low-priority victims are what makes preemption affordable.
		c.Sizes = []int{2, 3, 4, 6, 8, 12, 16}
	}
	if c.Churn == 0 {
		c.Churn = 12
	}
	if c.ConstraintFraction == 0 {
		c.ConstraintFraction = 0.35
	}
	if c.LongFraction == 0 {
		// A heavy tail of 8x-long residents is what opens real
		// earliest-start windows behind a blocked head: without it, free
		// capacity churns every few hundred thousand cycles and the
		// conservative backfill window almost never fits a whole job.
		c.LongFraction = 0.2
	}
	if c.LongFactor == 0 {
		c.LongFactor = 8
	}
	if c.VolumeBytes == 0 {
		// Smaller halos than A15's 64KiB keep working sets — and with
		// them the checkpoint/migration bills — small enough that
		// preemption and defragmentation can actually pay for
		// themselves against the 50k-cycle-per-task migration floor.
		c.VolumeBytes = 4 << 10
	}
	if c.PriorityClasses == 0 {
		c.PriorityClasses = 3
	}
	if c.PreferredTier == "" {
		c.PreferredTier = "node"
	}
	if c.RequiredTier == "" {
		c.RequiredTier = "rack"
	}
	if c.DefragThreshold < 0 {
		c.DefragThreshold = 0
	}
	return c
}

// streamConfig builds the generator configuration of one grid cell.
func (c Sched2Config) streamConfig(seed int64) sched.StreamConfig {
	return sched.StreamConfig{
		Jobs:               c.Jobs,
		Seed:               seed,
		Sizes:              c.Sizes,
		WorkCycles:         c.WorkCycles,
		VolumeBytes:        c.VolumeBytes,
		Churn:              c.Churn,
		ConstraintFraction: c.ConstraintFraction,
		LongFraction:       c.LongFraction,
		LongFactor:         c.LongFactor,
		PreferredTier:      c.PreferredTier,
		RequiredTier:       c.RequiredTier,
		PriorityClasses:    c.PriorityClasses,
	}
}

// Validate rejects configurations the phase-2 pipeline cannot run.
func (c Sched2Config) Validate() error {
	d := c.withDefaults()
	if len(d.Shapes) == 0 {
		return fmt.Errorf("experiment: sched2 needs at least one platform shape")
	}
	for _, spec := range d.Shapes {
		if _, err := topology.FromSpec(spec); err != nil {
			return fmt.Errorf("experiment: sched2 shape %q: %w", spec, err)
		}
	}
	if len(d.Seeds) == 0 {
		return fmt.Errorf("experiment: sched2 needs at least one stream seed")
	}
	for _, seed := range d.Seeds {
		if err := d.streamConfig(seed).Validate(); err != nil {
			return err
		}
	}
	if d.DefragThreshold > 1 {
		return fmt.Errorf("experiment: sched2 defrag threshold %v out of range [0,1]", d.DefragThreshold)
	}
	probe := sched.JobSpec{
		Name: "probe", Tasks: 1,
		Preferred: d.PreferredTier, Required: d.RequiredTier,
	}
	return probe.Validate()
}

// sched2Options maps an A16 mode name to scheduler options. Every arm is
// topology-aware; the arms differ only in the phase-2 policies.
func sched2Options(mode string, cfg Sched2Config) (sched.Options, error) {
	opts := sched.Options{Policy: sched.TopoAware, Fit: cfg.Fit, Queue: cfg.Queue}
	switch mode {
	case "fifo":
	case "backfill":
		opts.Backfill = true
	case "full":
		opts.Backfill = true
		opts.Preempt = true
		opts.Defrag = true
		opts.DefragThreshold = cfg.DefragThreshold
	default:
		return sched.Options{}, fmt.Errorf("experiment: unknown sched2 mode %q", mode)
	}
	return opts, nil
}

// Sched2Result reports one policy arm across the whole grid.
type Sched2Result struct {
	Mode string
	// Seconds is the grid total of aggregate job cycle time — the A16
	// ordering metric.
	Seconds float64
	// WallSeconds is the real time the arm took, for the bench gate.
	WallSeconds float64
	// Admitted and Rejected total the grid's stream partition.
	Admitted, Rejected int
	// Backfills, Preemptions and DefragMigrations total the phase-2
	// policy activity over the grid.
	Backfills, Preemptions, DefragMigrations int
	// FragmentationAvg and BusyUtilization are grid means.
	FragmentationAvg, BusyUtilization float64
	// Cells holds the per-cell reports, shape-major in grid order.
	Cells []SchedCell
}

// String renders a one-line summary.
func (r Sched2Result) String() string {
	return fmt.Sprintf("%-9s agg=%9.3fs admitted=%d backfills=%d preempts=%d defrags=%d frag=%.3f",
		r.Mode, r.Seconds, r.Admitted, r.Backfills, r.Preemptions, r.DefragMigrations, r.FragmentationAvg)
}

// RunSched2Cell replays one seeded stream on one platform shape under one
// phase-2 arm and returns the scheduler's report.
func RunSched2Cell(mode, shape string, seed int64, cfg Sched2Config) (*sched.Report, error) {
	cfg = cfg.withDefaults()
	opts, err := sched2Options(mode, cfg)
	if err != nil {
		return nil, err
	}
	jobs, err := sched.GenerateStream(cfg.streamConfig(seed))
	if err != nil {
		return nil, err
	}
	plat, err := numasim.NewPlatform(shape, numasim.Config{})
	if err != nil {
		return nil, err
	}
	s, err := sched.New(plat.Machine(), opts)
	if err != nil {
		return nil, err
	}
	return s.Run(jobs)
}

// RunSched2 executes one phase-2 arm over the full shape × seed grid.
func RunSched2(mode string, cfg Sched2Config) (Sched2Result, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return Sched2Result{}, err
	}
	cfg = cfg.withDefaults()
	res := Sched2Result{Mode: mode}
	var aggCycles, fragSum, utilSum float64
	for _, shape := range cfg.Shapes {
		for _, seed := range cfg.Seeds {
			rep, err := RunSched2Cell(mode, shape, seed, cfg)
			if err != nil {
				return Sched2Result{}, fmt.Errorf("sched2 %s, shape %q seed %d: %w", mode, shape, seed, err)
			}
			aggCycles += rep.AggregateCycles
			fragSum += rep.FragmentationAvg
			utilSum += rep.BusyUtilization
			res.Admitted += rep.Admitted
			res.Rejected += rep.Rejected
			res.Backfills += rep.Backfills
			res.Preemptions += rep.Preemptions
			res.DefragMigrations += rep.DefragMigrations
			res.Cells = append(res.Cells, SchedCell{Shape: shape, Seed: seed, Report: rep})
		}
	}
	cells := float64(len(res.Cells))
	res.Seconds = aggCycles / topology.DefaultAttrs().ClockHz
	res.FragmentationAvg = fragSum / cells
	res.BusyUtilization = utilSum / cells
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// AblationSched2 (A16) compares the phase-2 policy stack over the grid:
// full (backfill + preemption + defrag) < backfill-only < fifo on aggregate
// job cycle time. The per-cell ordering is asserted by the experiment tests;
// the summed rows carry the same assertion into the bench pipeline.
func AblationSched2(cfg Sched2Config) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, mode := range Sched2Modes() {
		res, err := RunSched2(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation sched2, %s: %w", mode, err)
		}
		rows = append(rows, AblationRow{
			Name:    "sched2/" + mode,
			Seconds: res.Seconds,
			Detail: fmt.Sprintf("admitted=%d rejected=%d backfills=%d preempts=%d defrags=%d frag=%.3f util=%.3f cells=%d",
				res.Admitted, res.Rejected, res.Backfills, res.Preemptions, res.DefragMigrations,
				res.FragmentationAvg, res.BusyUtilization, len(res.Cells)),
			WallSeconds: res.WallSeconds,
		})
	}
	return rows, nil
}

// Sched2ConfigFrom derives the phase-2 configuration from the common
// ablation Config, mirroring SchedConfigFrom: fixed grid shapes, stream
// seeds derived from cfg.Seed (the default ablation seed 7 reproduces the
// default A16 grid seeds 8 and 37).
func Sched2ConfigFrom(cfg Config) Sched2Config {
	cfg = cfg.withDefaults()
	return Sched2Config{Seeds: []int64{cfg.Seed + 1, cfg.Seed + 30}}
}
