package experiment

import (
	"fmt"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/placement"
)

// The cluster experiment (A9) takes the placement pipeline beyond the single
// SMP of the paper: the LK23 block stencil runs on a simulated multi-machine
// cluster whose nodes are joined by a network fabric, and the hierarchical
// two-level policy — cut-minimizing partition across nodes, then Algorithm 1
// per node — is compared against flat TreeMatch on the whole cluster tree,
// round-robin across nodes, and a fabric-free single machine of the same
// total core count (the price of distribution itself).

// ClusterConfig parameterizes one multi-node stencil run.
type ClusterConfig struct {
	// Nodes is the number of cluster machines (default 4, minimum 2 for the
	// scenario to exercise the fabric).
	Nodes int
	// CoresPerNode and CoresPerSocket shape each machine (defaults 12 and
	// 6): every node is CoresPerNode/CoresPerSocket sockets with a shared
	// L3 and one NUMA node per socket.
	CoresPerNode, CoresPerSocket int
	// Iters is the number of stencil iterations (default 30).
	Iters int
	// BlockBytes is each task's working set (default 2 MiB): the block it
	// sweeps per iteration and drags along when migrated.
	BlockBytes int64
	// HaloBytes is the per-iteration volume exchanged with each edge
	// neighbour (default 256 KiB).
	HaloBytes float64
	// Fabric overrides the interconnect parameters; zero fields keep the
	// 10GbE-class defaults.
	Fabric numasim.Fabric
	// Seed drives the simulated OS scheduler.
	Seed int64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 12
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 6
	}
	if c.Iters == 0 {
		c.Iters = 30
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 2 << 20
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 256 << 10
	}
	return c
}

// Validate rejects configurations the cluster pipeline cannot run.
func (c ClusterConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case d.Nodes < 2:
		return fmt.Errorf("experiment: cluster needs at least 2 nodes, got %d", d.Nodes)
	case d.CoresPerNode < 1 || d.CoresPerSocket < 1:
		return fmt.Errorf("experiment: invalid node shape %d cores / %d per socket", d.CoresPerNode, d.CoresPerSocket)
	case d.CoresPerNode%d.CoresPerSocket != 0:
		return fmt.Errorf("experiment: %d cores per node not divisible into sockets of %d", d.CoresPerNode, d.CoresPerSocket)
	case d.Iters < 1:
		return fmt.Errorf("experiment: iteration count %d must be positive", d.Iters)
	case d.BlockBytes < 0 || d.HaloBytes < 0:
		return fmt.Errorf("experiment: negative block or halo size")
	}
	return nil
}

// Cluster builds the simulated cluster for a configuration via the
// spec-driven platform path. A Fabric.Racks override still splits the
// nodes across that many top-of-rack switches, as the legacy constructor
// did.
func Cluster(cfg ClusterConfig) (*numasim.Platform, error) {
	cfg = cfg.withDefaults()
	nodeSpec := fmt.Sprintf("pack:%d l3:1 core:%d pu:1",
		cfg.CoresPerNode/cfg.CoresPerSocket, cfg.CoresPerSocket)
	spec := fmt.Sprintf("cluster:%d %s", cfg.Nodes, nodeSpec)
	if r := cfg.Fabric.Racks; r > 1 {
		if cfg.Nodes%r != 0 {
			return nil, fmt.Errorf("experiment: %d cluster nodes not divisible across %d racks", cfg.Nodes, r)
		}
		spec = fmt.Sprintf("rack:%d cluster:%d %s", r, cfg.Nodes/r, nodeSpec)
	}
	return numasim.NewPlatformAttrs(spec, cfg.Fabric.Defaults(), numasim.Config{})
}

// ClusterModes lists the placement arms of the cluster ablation in report
// order: the hierarchical two-level policy first (the speedup base), then
// flat TreeMatch on the whole cluster tree, round-robin across nodes, and
// the fabric-free single machine.
func ClusterModes() []string {
	return []string{"hierarchical", "flat", "rr-nodes", "bignode"}
}

// buildClusterStencil constructs the multi-node block stencil on the
// runtime: one task per core, arranged in the most square bx×by grid. Task
// (x,y) writes its own block location and reads the block of each edge
// neighbour every iteration, so every task pair cut apart by the node
// partition sends its halo volume over the fabric once per iteration. All
// volumes are whole bytes, so the run is bit-deterministic regardless of
// goroutine interleaving (the phase-shift scenario's discipline).
func buildClusterStencil(rt *orwl.Runtime, cfg ClusterConfig) error {
	cfg = cfg.withDefaults()
	n := cfg.Nodes * cfg.CoresPerNode
	bx, by := BlockGrid(n)
	id := func(x, y int) int { return y*bx + x }
	locs := make([]*orwl.Location, n)
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			locs[id(x, y)] = rt.NewLocation(fmt.Sprintf("blk(%d,%d)", x, y), cfg.BlockBytes)
		}
	}
	cells := float64(cfg.BlockBytes / 8)
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			i := id(x, y)
			task := rt.AddTask(fmt.Sprintf("b(%d,%d)", x, y), nil)
			var halos []*orwl.Handle
			for _, d := range [][2]int{{0, -1}, {0, 1}, {1, 0}, {-1, 0}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= bx || ny < 0 || ny >= by {
					continue
				}
				halos = append(halos, task.NewHandleVol(locs[id(nx, ny)], orwl.Read, cfg.HaloBytes, 0))
			}
			w := task.NewHandleVol(locs[i], orwl.Write, cfg.HaloBytes, 1)
			region := locs[i].Region()
			block := cfg.BlockBytes
			task.SetFunc(func(t *orwl.Task) error {
				for it := 0; it < cfg.Iters; it++ {
					last := it == cfg.Iters-1
					for _, h := range halos {
						if err := h.Acquire(); err != nil {
							return err
						}
						if err := releaseOrNext(h, last); err != nil {
							return err
						}
					}
					if err := w.Acquire(); err != nil {
						return err
					}
					if p := t.Proc(); p != nil {
						p.Compute(11 * cells) // LK23's flops per cell
						p.SweepWorkingSet(region, block)
					}
					if err := releaseOrNext(w, last); err != nil {
						return err
					}
					t.EndIteration()
				}
				return nil
			})
		}
	}
	return nil
}

// clusterPolicy returns the placement policy and machine of one ablation
// arm.
func clusterPolicy(mode string, cfg ClusterConfig) (*numasim.Machine, placement.Policy, error) {
	switch mode {
	case "hierarchical", "flat", "rr-nodes":
		c, err := Cluster(cfg)
		if err != nil {
			return nil, nil, err
		}
		var pol placement.Policy
		switch mode {
		case "hierarchical":
			pol = placement.Hierarchical{}
		case "flat":
			pol = placement.TreeMatch{}
		default:
			pol = placement.RoundRobinNodes{}
		}
		return c.Machine(), pol, nil
	case "bignode":
		// The same total core count in one shared-memory machine: no
		// fabric, the upper bound distribution has to pay for.
		total := cfg.Nodes * cfg.CoresPerNode
		m, err := machineFromSpec(fmt.Sprintf("pack:%d l3:1 core:%d pu:1",
			total/cfg.CoresPerSocket, cfg.CoresPerSocket))
		if err != nil {
			return nil, nil, err
		}
		return m, placement.TreeMatch{}, nil
	default:
		return nil, nil, fmt.Errorf("experiment: unknown cluster mode %q", mode)
	}
}

// RunCluster executes the multi-node stencil under one placement mode and
// returns its simulated processing time.
func RunCluster(mode string, cfg ClusterConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	mach, pol, err := clusterPolicy(mode, cfg)
	if err != nil {
		return Result{}, err
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildClusterStencil(rt, cfg); err != nil {
		return Result{}, err
	}
	a, err := placement.Place(rt, pol)
	if err != nil {
		return Result{}, err
	}
	placement.SetContention(mach, a, nil)
	placement.SetFabricContention(mach, a, rt.CommMatrix())
	if err := rt.Run(); err != nil {
		return Result{}, err
	}
	tasks := cfg.Nodes * cfg.CoresPerNode
	return Result{
		Impl:     ORWLBind,
		Cores:    tasks,
		Blocks:   tasks,
		Tasks:    tasks,
		Seconds:  rt.MakespanSeconds(),
		Policy:   a.Policy,
		Strategy: a.Strategy.String(),
	}, nil
}

// AblationCluster (A9) compares the placement arms on the multi-node
// stencil.
func AblationCluster(cfg ClusterConfig) ([]AblationRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var rows []AblationRow
	for _, mode := range ClusterModes() {
		res, err := RunCluster(mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation cluster, %s: %w", mode, err)
		}
		detail := fmt.Sprintf("%d nodes x %d cores", cfg.Nodes, cfg.CoresPerNode)
		if mode == "bignode" {
			detail = fmt.Sprintf("1 machine x %d cores", cfg.Nodes*cfg.CoresPerNode)
		}
		rows = append(rows, AblationRow{Name: "cluster/" + mode, Seconds: res.Seconds, Detail: detail})
	}
	return rows, nil
}

// ClusterConfigFrom derives the cluster configuration from the common
// ablation Config: the core count splits across 4 nodes (2 when it is too
// small). A core count the node count does not divide is rounded down to
// nodes × (cores/nodes); the Detail column of every A9 row prints the
// effective shape, so the adjustment is visible in the report.
func ClusterConfigFrom(cfg Config) ClusterConfig {
	cfg = cfg.withDefaults()
	nodes := 4
	if cfg.Cores < 16 {
		nodes = 2
	}
	perNode := cfg.Cores / nodes
	if perNode < 1 {
		perNode = 1
	}
	perSocket := cfg.CoresPerSocket
	if perSocket > perNode || perNode%perSocket != 0 {
		perSocket = perNode
	}
	return ClusterConfig{
		Nodes:          nodes,
		CoresPerNode:   perNode,
		CoresPerSocket: perSocket,
		Seed:           cfg.Seed,
	}
}
