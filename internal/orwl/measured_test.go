package orwl

import (
	"testing"
)

// TestMeasuredCommMatrixRing validates the observed communication volumes
// of the ring program against its structure: task i consumes 8 bytes per
// iteration from its predecessor through the ring location, for every
// iteration whose input was produced by a task (all but iteration 0, which
// reads the initial payload).
func TestMeasuredCommMatrixRing(t *testing.T) {
	const n, iters = 4, 10
	rt := buildRuntime()
	ringProgram(rt, n, iters, 8)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	m := rt.MeasuredCommMatrix()
	if m.Order() != n {
		t.Fatalf("order = %d", m.Order())
	}
	if !m.IsSymmetric() {
		t.Errorf("measured matrix not symmetric")
	}
	for i := 0; i < n; i++ {
		succ := (i + 1) % n
		// Writer i's value is consumed by task succ in iterations 1..9 (the
		// iteration-0 read returns the preset payload, produced by nobody).
		if got, want := m.At(i, succ), float64(8*(iters-1)); got != want {
			t.Errorf("measured(%d,%d) = %v, want %v", i, succ, got, want)
		}
		// Non-neighbours never exchange data.
		opposite := (i + 2) % n
		if got := m.At(i, opposite); got != 0 {
			t.Errorf("measured(%d,%d) = %v, want 0", i, opposite, got)
		}
	}
}

// TestMeasuredMatchesStructural is the cross-validation the measured matrix
// exists for: over N iterations the observed volumes converge to N times
// the per-iteration structural affinity that the placement module predicts
// from the program shape (modulo the warm-up iteration, whose inputs are
// the preset payloads rather than produced data).
func TestMeasuredMatchesStructural(t *testing.T) {
	const n, iters = 6, 20
	rt := buildRuntime()
	ringProgram(rt, n, iters, 8)
	structural := rt.CommMatrix() // per-iteration prediction
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	measured := rt.MeasuredCommMatrix()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			want := structural.At(i, j) * float64(iters-1)
			if got := measured.At(i, j); got != want {
				t.Errorf("measured(%d,%d) = %v, want structural x%d = %v",
					i, j, got, iters-1, want)
			}
		}
	}
}

// TestMeasuredEmptyBeforeRun: no grants, no volumes.
func TestMeasuredEmptyBeforeRun(t *testing.T) {
	rt := buildRuntime()
	ringProgram(rt, 3, 2, 8)
	m := rt.MeasuredCommMatrix()
	if m.TotalVolume() != 0 {
		t.Errorf("pre-run measured volume = %v", m.TotalVolume())
	}
}
