package topology

import "fmt"

// Fabric domains are the scheduler-facing view of the fabric tiers: a domain
// is one subtree of the fabric hierarchy (a cluster node, a rack, a pod, or
// the whole machine) identified by its tier and level index, carrying the
// level indices of the cluster nodes it spans. The online scheduler
// (internal/sched) enumerates candidate domains per tier, scores them by free
// capacity, and places each job inside exactly one of them; required/preferred
// topology constraints name these tiers.

// FabricDomain is one placement domain: a contiguous subtree of the fabric
// hierarchy at a given tier.
type FabricDomain struct {
	// Tier is the fabric level of the domain: Cluster (one node), Rack,
	// Pod, or Machine (the whole platform).
	Tier Kind
	// Index is the domain's level index within its tier (e.g. rack 2).
	Index int
	// Nodes holds the level indices of the cluster nodes inside the
	// domain, ascending.
	Nodes []int
}

// String renders a compact identity, e.g. "rack[1]{2,3}".
func (d FabricDomain) String() string {
	return fmt.Sprintf("%s[%d]%v", d.Tier, d.Index, d.Nodes)
}

// FabricDomains enumerates the placement domains of one fabric tier in level
// order. Cluster yields one domain per cluster node; Rack and Pod yield one
// domain per rack/pod (nil when the platform has no such tier); Machine
// yields a single domain spanning every cluster node. Platforms without an
// explicit cluster level (a single fused node) expose one Cluster domain and
// one Machine domain, both spanning node 0.
func (t *Topology) FabricDomains(tier Kind) []FabricDomain {
	nodes := t.NumClusterNodes()
	switch tier {
	case Cluster:
		out := make([]FabricDomain, nodes)
		for i := range out {
			out[i] = FabricDomain{Tier: Cluster, Index: i, Nodes: []int{i}}
		}
		return out
	case Rack:
		return t.groupDomains(Rack, t.racks)
	case Pod:
		return t.groupDomains(Pod, t.pods)
	case Machine:
		all := make([]int, nodes)
		for i := range all {
			all[i] = i
		}
		return []FabricDomain{{Tier: Machine, Index: 0, Nodes: all}}
	}
	return nil
}

// groupDomains builds one domain per parent object (rack or pod), collecting
// the cluster nodes below each parent in level order.
func (t *Topology) groupDomains(tier Kind, parents []*Object) []FabricDomain {
	if len(parents) == 0 {
		return nil
	}
	index := make(map[*Object]int, len(parents))
	for i, p := range parents {
		index[p] = i
	}
	out := make([]FabricDomain, len(parents))
	for i := range out {
		out[i] = FabricDomain{Tier: tier, Index: i}
	}
	for n, node := range t.ClusterNodes() {
		p := node.Ancestor(tier)
		if p == nil {
			continue
		}
		i := index[p]
		out[i].Nodes = append(out[i].Nodes, n)
	}
	return out
}

// DomainTiers lists the fabric tiers this platform actually has, narrowest
// first: always Cluster and Machine, plus Rack and Pod when present. The
// scheduler widens a job's candidate tier along this order during
// preferred-constraint fallback.
func (t *Topology) DomainTiers() []Kind {
	tiers := []Kind{Cluster}
	if t.NumRacks() > 0 {
		tiers = append(tiers, Rack)
	}
	if t.NumPods() > 0 {
		tiers = append(tiers, Pod)
	}
	return append(tiers, Machine)
}
