package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/comm"
	"repro/internal/numasim"
	"repro/internal/placement"
	"repro/internal/topology"
	"repro/internal/treematch"
)

// Policy selects the placement strategy of the scheduler.
type Policy int

const (
	// TopoAware is the full system: preferred-tier fallback, fit-scored
	// domain choice, affinity-aware intra-domain layout via the placement
	// engine restricted to the domain's free slots.
	TopoAware Policy = iota
	// TopoBlind honors required constraints but ignores preferred tiers
	// and domain scoring: the first (lowest-index) domain that fits wins
	// and tasks fill its free slots in plain core order.
	TopoBlind
	// FirstFit is the topology-oblivious baseline: constraints are not
	// understood at all, and tasks scatter round-robin across the nodes'
	// free slots.
	FirstFit
)

var policyNames = map[Policy]string{TopoAware: "topo-aware", TopoBlind: "topo-blind", FirstFit: "first-fit"}

func (p Policy) String() string { return policyNames[p] }

// ParsePolicy maps a CLI name to a Policy.
func ParsePolicy(name string) (Policy, error) {
	for p, n := range policyNames {
		if n == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q (want topo-aware, topo-blind or first-fit)", name)
}

// Fit selects how the topology-aware policy scores candidate domains.
type Fit int

const (
	// BestFit packs: among fitting domains the one with the least free
	// capacity wins, keeping large domains whole for large jobs.
	BestFit Fit = iota
	// WorstFit spreads: the domain with the most free capacity wins.
	WorstFit
)

// ParseFit maps a CLI name to a Fit rule.
func ParseFit(name string) (Fit, error) {
	switch name {
	case "best":
		return BestFit, nil
	case "worst":
		return WorstFit, nil
	}
	return 0, fmt.Errorf("sched: unknown fit rule %q (want best or worst)", name)
}

func (f Fit) String() string {
	if f == WorstFit {
		return "worst"
	}
	return "best"
}

// QueuePolicy decides what happens to a job whose required tier is full at
// placement time.
type QueuePolicy int

const (
	// QueueWait keeps the job at the head of the FIFO queue until
	// capacity frees up.
	QueueWait QueuePolicy = iota
	// QueueReject drops a required-constrained job immediately when no
	// domain of its allowed tiers currently fits it; unconstrained jobs
	// always wait.
	QueueReject
)

// ParseQueuePolicy maps a CLI name to a QueuePolicy.
func ParseQueuePolicy(name string) (QueuePolicy, error) {
	switch name {
	case "wait":
		return QueueWait, nil
	case "reject":
		return QueueReject, nil
	}
	return 0, fmt.Errorf("sched: unknown queue policy %q (want wait or reject)", name)
}

func (q QueuePolicy) String() string {
	if q == QueueReject {
		return "reject"
	}
	return "wait"
}

// Options configures a Scheduler.
type Options struct {
	Policy Policy
	Fit    Fit
	Queue  QueuePolicy
	// Match tunes the underlying placement heuristics (zero value is the
	// engine's default portfolio).
	Match treematch.Options
	// Backfill lets queued jobs jump a blocked FIFO head when their whole
	// modeled service fits inside the head's earliest-feasible-start
	// window, so the head is never delayed (conservative backfill).
	Backfill bool
	// Preempt lets a required-constrained arrival of higher priority
	// checkpoint-and-requeue strictly-lower-priority unconstrained jobs
	// when that is the only way to open its domain; victims pay the
	// checkpoint/respawn bill, and the eviction only happens when the
	// head's modeled wait saving exceeds that bill.
	Preempt bool
	// Defrag migrates one running job to compact a domain for a blocked
	// head once instantaneous fragmentation reaches DefragThreshold,
	// committing only when the head's wait saving beats the migration
	// bill (the adaptive engine's hysteresis pattern).
	Defrag bool
	// DefragThreshold is the fragmentation weight (0..1, see
	// Report.FragmentationAvg) that arms defragmentation; 0 arms it
	// whenever the head is blocked.
	DefragThreshold float64
}

// Scheduler is the online multi-tenant scheduler: one instance owns the
// platform's free-capacity index and replays a workload stream through its
// event loop. A Scheduler is single-goroutine; Run is not reentrant.
type Scheduler struct {
	mach *numasim.Machine
	topo *topology.Topology
	cap  *Capacity
	opts Options
	// coreOfPU maps a PU OS index back to its core level index.
	coreOfPU map[int]int
	// nodeCores counts the total core slots of every cluster node.
	nodeCores []int
}

// New builds a scheduler for the machine.
func New(mach *numasim.Machine, opts Options) (*Scheduler, error) {
	if mach == nil {
		return nil, fmt.Errorf("sched: scheduler requires a machine")
	}
	topo := mach.Topology()
	cap, err := NewCapacity(topo)
	if err != nil {
		return nil, err
	}
	coreOfPU := map[int]int{}
	nodeCores := make([]int, topo.NumClusterNodes())
	for ci, core := range topo.Cores() {
		for _, pu := range core.Children {
			coreOfPU[pu.OSIndex] = ci
		}
		nodeCores[cap.nodeOf[ci]]++
	}
	return &Scheduler{mach: mach, topo: topo, cap: cap, opts: opts, coreOfPU: coreOfPU, nodeCores: nodeCores}, nil
}

// Capacity exposes the live free-capacity index (read-only use).
func (s *Scheduler) Capacity() *Capacity { return s.cap }

// JobStat reports one job's fate.
type JobStat struct {
	Name     string
	Tasks    int
	Priority int
	// Cycle timeline: StartCycles is the first dispatch, FinishCycles the
	// final departure. ServiceCycles accumulates the time actually spent
	// running (including respawn and migration surcharges) and WaitCycles
	// the time spent queued, so Arrive + Wait + Service = Finish even for
	// jobs that were preempted and restarted.
	ArriveCycles, StartCycles, FinishCycles float64
	WaitCycles, ServiceCycles, CommCycles   float64
	// Tier and Domain identify the fabric domain of the last placement.
	Tier   string
	Domain int
	// Cores lists the bound core level indices of the last placement,
	// ascending.
	Cores []int
	// NodesSpanned counts distinct cluster nodes of the last placement.
	NodesSpanned int
	// Segments records every [start, finish) × cores residency of the job:
	// one entry per dispatch, plus one per defrag migration. Preemption
	// truncates the open segment at the eviction clock. The exclusivity
	// invariant (no core shared by two jobs at once) is stated over
	// segments, not over the final Cores.
	Segments []Segment
	// Backfilled marks a job that was dispatched past a blocked FIFO head.
	Backfilled bool
	// Preemptions counts how many times the job was checkpoint-requeued.
	Preemptions int
	// RespawnCycles totals the checkpoint/respawn surcharge the job paid
	// across restarts (priced by numasim.CheckpointCostCycles and
	// MigrationCostCycles plus the comm delta of the new layout).
	RespawnCycles float64
	// DefragMigrations counts mid-service compaction moves of this job;
	// DefragCostCycles totals their (signed) service delta.
	DefragMigrations int
	DefragCostCycles float64
	Rejected         bool
	RejectReason     string
}

// Segment is one contiguous residency of a job on a fixed core set.
type Segment struct {
	StartCycles, FinishCycles float64
	Cores                     []int
}

// Report aggregates one scheduler run.
type Report struct {
	Policy string
	Jobs   []JobStat
	// Admitted/Rejected partition the stream.
	Admitted, Rejected int
	// AggregateCycles sums finish − arrival over admitted jobs — the A15
	// ordering metric (placement quality shortens service, packing
	// shortens waits).
	AggregateCycles float64
	// MakespanCycles is the departure time of the last job.
	MakespanCycles float64
	// WaitCycles sums queueing delay over admitted jobs.
	WaitCycles float64
	// BusyUtilization is Σ tasks·service / (cores · makespan): the slot
	// occupancy achieved over the run.
	BusyUtilization float64
	// FragmentationAvg is the time-weighted mean of 1 − maxNodeFree/totalFree:
	// 0 when the free capacity sits in whole nodes (packed), approaching 1
	// when it is shredded into slivers across many nodes (fragmented).
	FragmentationAvg float64
	// AvgSpread is the mean node count spanned by admitted jobs.
	AvgSpread float64
	// Phase-2 policy activity: jobs dispatched past a blocked head,
	// checkpoint-requeue evictions, and committed compaction moves.
	Backfills, Preemptions, DefragMigrations int
	// RespawnCycles totals the checkpoint/respawn bills paid by preempted
	// jobs; DefragCostCycles the (signed) service deltas of defrag moves.
	RespawnCycles, DefragCostCycles float64
}

// jobState tracks one in-flight job through the event loop.
type jobState struct {
	spec JobSpec
	seq  int
	stat *JobStat
	// waitSince is when the current queueing episode began: the arrival
	// for a fresh job, the eviction clock for a preempted one.
	waitSince float64
	// resume carries the checkpoint of a preempted job awaiting restart;
	// nil for jobs that are running fresh.
	resume *resumeState
}

// departure orders the running set by (finish, seq) and carries everything a
// mid-service intervention (preemption, defrag migration) needs to unwind
// the dispatch: the exact binding, its priced comm, and the service total
// the dispatch was charged at.
type departure struct {
	finish float64
	seq    int
	job    *jobState
	cores  []int
	// taskPU maps task index to bound PU OS index (prices migrations).
	taskPU []int
	// comm is the full-matrix communication cost of this layout; service
	// the total service this dispatch was priced at; lastStart when the
	// current segment began.
	comm, service, lastStart float64
	stat                     *JobStat
}

type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h departureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// runLoop is one Run invocation's mutable event-loop state. The phase-2
// policies (phase2.go) are methods on it: they inspect the queue and the
// running set, perform hypothetical placements against the live capacity
// index (undoing every probe), and commit through the same dispatch path
// the FIFO drain uses.
type runLoop struct {
	s       *Scheduler
	rep     *Report
	queue   []*jobState
	running departureHeap
	clock   float64
	fragInt float64
	busy    float64
}

// weight is the instantaneous fragmentation: 1 − maxNodeFree/totalFree.
func (r *runLoop) weight() float64 {
	total := r.s.cap.FreeTotal()
	if total == 0 {
		return 0
	}
	return 1 - float64(r.s.cap.MaxNodeFree())/float64(total)
}

// advance moves the clock to t, accruing time-weighted fragmentation.
func (r *runLoop) advance(t float64) {
	if t > r.clock {
		r.fragInt += r.weight() * (t - r.clock)
		r.clock = t
	}
}

// closeSegment accounts the end of one residency segment: service time and
// busy slot-cycles accrue only here, so preemption and defrag keep the
// aggregates exact.
func (r *runLoop) closeSegment(d *departure, at float64) {
	delta := at - d.lastStart
	d.stat.ServiceCycles += delta
	r.busy += float64(d.stat.Tasks) * delta
}

// dispatch commits a placement: binds the slots, prices the service
// (including the respawn bill of a preempted job), opens a residency
// segment, and schedules the departure.
func (r *runLoop) dispatch(j *jobState, placed *placementResult, backfilled bool) error {
	if err := r.s.cap.Bind(placed.cores); err != nil {
		return fmt.Errorf("sched: bind %s: %w", j.spec.Name, err)
	}
	svc, respawn := r.s.serviceOf(j, placed)
	st := j.stat
	if len(st.Segments) == 0 {
		st.StartCycles = r.clock
	}
	st.WaitCycles += r.clock - j.waitSince
	st.CommCycles = placed.comm
	st.FinishCycles = r.clock + svc
	st.Tier = placed.tier
	st.Domain = placed.domain
	st.Cores = placed.cores
	st.NodesSpanned = placed.nodes
	st.Segments = append(st.Segments, Segment{StartCycles: r.clock, FinishCycles: st.FinishCycles, Cores: placed.cores})
	if respawn > 0 {
		st.RespawnCycles += respawn
		r.rep.RespawnCycles += respawn
	}
	if backfilled {
		st.Backfilled = true
		r.rep.Backfills++
	}
	j.resume = nil
	heap.Push(&r.running, departure{
		finish: st.FinishCycles, seq: j.seq, job: j, cores: placed.cores,
		taskPU: placed.taskPU, comm: placed.comm, service: svc, lastStart: r.clock, stat: st,
	})
	return nil
}

// depart releases a finished job's slots and closes its last segment.
func (r *runLoop) depart(d departure) error {
	if err := r.s.cap.Release(d.cores); err != nil {
		return fmt.Errorf("sched: release %s: %w", d.stat.Name, err)
	}
	r.closeSegment(&d, d.finish)
	return nil
}

// drain places as much of the FIFO queue as capacity allows. When the head
// is blocked the phase-2 policies get a shot in escalating order of cost:
// defragment (move one running job, nobody loses time unpaid), preempt
// (evict strictly-lower-priority jobs, they pay checkpoint/respawn), and
// finally backfill jobs that provably cannot delay the head.
func (r *runLoop) drain() error {
	for len(r.queue) > 0 {
		j := r.queue[0]
		placed, full, err := r.s.tryPlace(j)
		if err != nil {
			return err
		}
		if placed == nil {
			if full && j.spec.Required != "" && r.s.opts.Queue == QueueReject && j.resume == nil {
				j.stat.Rejected = true
				j.stat.RejectReason = "required tier full"
				r.rep.Rejected++
				r.queue = r.queue[1:]
				continue
			}
			moved, err := r.defragAttempt(j)
			if err != nil {
				return err
			}
			if moved {
				continue // compaction opened the head's domain: retry it
			}
			opened, err := r.preemptAttempt(j)
			if err != nil {
				return err
			}
			if opened {
				continue // eviction opened the head's domain: retry it
			}
			if r.s.opts.Backfill {
				if err := r.backfill(j); err != nil {
					return err
				}
			}
			return nil // FIFO head waits; everything behind it waits too
		}
		if err := r.dispatch(j, placed, false); err != nil {
			return err
		}
		r.queue = r.queue[1:]
	}
	return nil
}

// Run replays the workload stream through the event loop and returns the
// report. Jobs are admitted FIFO in arrival order (ties broken by input
// order); the virtual clock advances from arrival to departure events and
// the free-capacity index binds and releases slots as jobs start and finish.
func (s *Scheduler) Run(jobs []JobSpec) (*Report, error) {
	rep := &Report{Policy: s.opts.Policy.String(), Jobs: make([]JobStat, len(jobs))}
	states := make([]*jobState, len(jobs))
	for i, spec := range jobs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		rep.Jobs[i] = JobStat{Name: spec.Name, Tasks: spec.Tasks, Priority: spec.Priority, ArriveCycles: spec.ArriveCycles}
		states[i] = &jobState{spec: spec, seq: i, stat: &rep.Jobs[i], waitSince: spec.ArriveCycles}
	}
	order := make([]*jobState, len(states))
	copy(order, states)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].spec.ArriveCycles < order[j].spec.ArriveCycles
	})

	r := &runLoop{s: s, rep: rep}
	next := 0
	for next < len(order) || r.running.Len() > 0 {
		tArr, tDep := math.Inf(1), math.Inf(1)
		if next < len(order) {
			tArr = order[next].spec.ArriveCycles
		}
		if r.running.Len() > 0 {
			tDep = r.running[0].finish
		}
		t := tArr
		if tDep < t {
			t = tDep
		}
		r.advance(t)
		for r.running.Len() > 0 && r.running[0].finish == r.clock {
			d := heap.Pop(&r.running).(departure)
			if err := r.depart(d); err != nil {
				return nil, err
			}
		}
		for next < len(order) && order[next].spec.ArriveCycles == r.clock {
			j := order[next]
			next++
			if reason := s.infeasible(j.spec); reason != "" {
				j.stat.Rejected = true
				j.stat.RejectReason = reason
				rep.Rejected++
				continue
			}
			r.queue = append(r.queue, j)
		}
		if err := r.drain(); err != nil {
			return nil, err
		}
	}

	for i := range rep.Jobs {
		st := &rep.Jobs[i]
		if st.Rejected {
			continue
		}
		rep.Admitted++
		rep.AggregateCycles += st.FinishCycles - st.ArriveCycles
		rep.WaitCycles += st.WaitCycles
		rep.AvgSpread += float64(st.NodesSpanned)
		if st.FinishCycles > rep.MakespanCycles {
			rep.MakespanCycles = st.FinishCycles
		}
	}
	if rep.Admitted > 0 {
		rep.AvgSpread /= float64(rep.Admitted)
	}
	if rep.MakespanCycles > 0 {
		rep.BusyUtilization = r.busy / (float64(s.topo.NumCores()) * rep.MakespanCycles)
		rep.FragmentationAvg = r.fragInt / rep.MakespanCycles
	}
	return rep, nil
}

// serviceOf prices one dispatch of a job under a placement. A fresh job is
// its work plus the layout's comm; a preempted job resumes its outstanding
// remainder, re-priced for the new layout's comm on the outstanding
// fraction, plus the respawn bill of pulling every task's checkpoint image
// from its old PU (numasim.MigrationCostCycles). The second return is that
// respawn bill alone.
func (s *Scheduler) serviceOf(j *jobState, placed *placementResult) (svc, respawn float64) {
	if j.resume == nil {
		return j.spec.WorkCycles + placed.comm, 0
	}
	rs := j.resume
	ws := workingSetBytes(j.spec)
	for t, old := range rs.oldPUs {
		respawn += s.mach.MigrationCostCycles(old, placed.taskPU[t], ws)
	}
	svc = rs.remaining + (placed.comm-rs.comm)*rs.remFrac + respawn
	return svc, respawn
}

// infeasible reports why a job can never run on this platform, or "" when it
// can. FirstFit ignores constraints, so only raw capacity counts there.
func (s *Scheduler) infeasible(spec JobSpec) string {
	if spec.Tasks > s.topo.NumCores() {
		return fmt.Sprintf("%d tasks exceed %d cores", spec.Tasks, s.topo.NumCores())
	}
	if s.opts.Policy == FirstFit {
		return ""
	}
	tiers, err := s.tierLadder(spec)
	if err != nil {
		return err.Error()
	}
	widest := tiers[len(tiers)-1]
	max := 0
	for d := range s.cap.Domains(widest) {
		if c := s.domainCapacity(widest, d); c > max {
			max = c
		}
	}
	if spec.Tasks > max {
		return fmt.Sprintf("%d tasks exceed the %d-core capacity of every %s domain", spec.Tasks, max, tierName(widest))
	}
	return ""
}

// domainCapacity is the total (free or bound) slot count of a domain.
func (s *Scheduler) domainCapacity(tier topology.Kind, d int) int {
	total := 0
	for _, n := range s.cap.Domains(tier)[d].Nodes {
		total += s.nodeCores[n]
	}
	return total
}

// tierName maps a topology kind back to the constraint grammar's name.
func tierName(k topology.Kind) string {
	switch k {
	case topology.Cluster:
		return "node"
	case topology.Rack:
		return "rack"
	case topology.Pod:
		return "pod"
	}
	return "machine"
}

// tierKind resolves a constraint tier name against the platform, erroring on
// tiers the platform does not have.
func (s *Scheduler) tierKind(name string) (topology.Kind, error) {
	var k topology.Kind
	switch name {
	case "node":
		k = topology.Cluster
	case "rack":
		k = topology.Rack
	case "pod":
		k = topology.Pod
	case "machine", "":
		return topology.Machine, nil
	default:
		return 0, fmt.Errorf("unknown tier %q", name)
	}
	for _, have := range s.topo.DomainTiers() {
		if have == k {
			return k, nil
		}
	}
	return 0, fmt.Errorf("platform has no %s tier", name)
}

// tierLadder lists the tiers a job may be placed at, narrowest first:
// from its preferred tier (default: narrowest) widening up to its required
// tier (default: the whole machine).
func (s *Scheduler) tierLadder(spec JobSpec) ([]topology.Kind, error) {
	all := s.topo.DomainTiers()
	lo, hi := 0, len(all)-1
	if spec.Preferred != "" {
		k, err := s.tierKind(spec.Preferred)
		if err != nil {
			return nil, err
		}
		lo = tierIndex(all, k)
	}
	if spec.Required != "" {
		k, err := s.tierKind(spec.Required)
		if err != nil {
			return nil, err
		}
		hi = tierIndex(all, k)
	}
	if lo > hi {
		lo = hi
	}
	return all[lo : hi+1], nil
}

func tierIndex(tiers []topology.Kind, k topology.Kind) int {
	for i, t := range tiers {
		if t == k {
			return i
		}
	}
	return len(tiers) - 1
}

// placementResult carries one successful placement attempt. tryPlace never
// mutates the capacity index, so results double as hypothetical placements:
// the phase-2 policies probe them against temporarily released capacity and
// only dispatch commits a binding.
type placementResult struct {
	cores  []int
	taskPU []int
	comm   float64
	tier   string
	domain int
	nodes  int
}

// tryPlace attempts to place the job now. Returns (nil, full, nil) when no
// allowed domain currently fits: full distinguishes "no capacity in the
// allowed tiers" for the queue policy.
func (s *Scheduler) tryPlace(j *jobState) (*placementResult, bool, error) {
	spec := j.spec
	switch s.opts.Policy {
	case FirstFit:
		if s.cap.FreeTotal() < spec.Tasks {
			return nil, true, nil
		}
		return s.placeScatter(spec)
	case TopoBlind:
		tiers, err := s.tierLadder(spec)
		if err != nil {
			return nil, false, err
		}
		tier := tiers[len(tiers)-1] // required tier (or machine): preferred ignored
		for d := range s.cap.Domains(tier) {
			if s.cap.DomainFree(tier, d) >= spec.Tasks {
				return s.placeSlotOrder(spec, tier, d)
			}
		}
		return nil, true, nil
	default: // TopoAware
		tiers, err := s.tierLadder(spec)
		if err != nil {
			return nil, false, err
		}
		for _, tier := range tiers {
			best := -1
			for d := range s.cap.Domains(tier) {
				free := s.cap.DomainFree(tier, d)
				if free < spec.Tasks {
					continue
				}
				if best < 0 {
					best = d
					continue
				}
				bf := s.cap.DomainFree(tier, best)
				if (s.opts.Fit == BestFit && free < bf) || (s.opts.Fit == WorstFit && free > bf) {
					best = d
				}
			}
			if best >= 0 {
				return s.placeAware(spec, tier, best)
			}
		}
		return nil, true, nil
	}
}

// placeAware runs the affinity-aware intra-domain layout: choose the fewest
// nodes (largest free counts first) that hold the job, then delegate to the
// placement engine restricted to those free slots.
func (s *Scheduler) placeAware(spec JobSpec, tier topology.Kind, d int) (*placementResult, bool, error) {
	dom := s.cap.Domains(tier)[d]
	nodes := append([]int(nil), dom.Nodes...)
	sort.SliceStable(nodes, func(i, j int) bool {
		fi, fj := s.cap.NodeFree(nodes[i]), s.cap.NodeFree(nodes[j])
		if fi != fj {
			return fi > fj
		}
		return nodes[i] < nodes[j]
	})
	var chosen []int
	got := 0
	for _, n := range nodes {
		if got >= spec.Tasks {
			break
		}
		if s.cap.NodeFree(n) == 0 {
			continue
		}
		chosen = append(chosen, n)
		got += s.cap.NodeFree(n)
	}
	sort.Ints(chosen)
	m, err := spec.Matrix()
	if err != nil {
		return nil, false, err
	}
	a, err := placement.AssignFreeSlots(s.mach, m, s.cap.FreeSlots(chosen), s.opts.Match)
	if err != nil {
		return nil, false, err
	}
	return s.finishPlacement(spec, m, a.TaskPU, tier, d)
}

// placeSlotOrder fills the domain's free slots in plain core order — the
// topology-blind arm's layout.
func (s *Scheduler) placeSlotOrder(spec JobSpec, tier topology.Kind, d int) (*placementResult, bool, error) {
	dom := s.cap.Domains(tier)[d]
	var slots []int
	for _, n := range dom.Nodes {
		slots = append(slots, s.cap.free[n]...)
	}
	sort.Ints(slots)
	return s.placeOnSlots(spec, slots[:spec.Tasks], tier, d)
}

// placeScatter deals the free slots round-robin across cluster nodes — the
// classic load-balancing baseline that ignores topology entirely.
func (s *Scheduler) placeScatter(spec JobSpec) (*placementResult, bool, error) {
	var slots []int
	for depth := 0; len(slots) < spec.Tasks; depth++ {
		advanced := false
		for n := range s.cap.free {
			if depth < len(s.cap.free[n]) {
				slots = append(slots, s.cap.free[n][depth])
				advanced = true
				if len(slots) == spec.Tasks {
					break
				}
			}
		}
		if !advanced {
			return nil, true, nil
		}
	}
	tier := topology.Machine
	return s.placeOnSlots(spec, slots, tier, 0)
}

// placeOnSlots binds task i to slot i (identity layout).
func (s *Scheduler) placeOnSlots(spec JobSpec, slots []int, tier topology.Kind, d int) (*placementResult, bool, error) {
	m, err := spec.Matrix()
	if err != nil {
		return nil, false, err
	}
	taskPU := make([]int, spec.Tasks)
	for t, core := range slots {
		taskPU[t] = s.topo.Cores()[core].Children[0].OSIndex
	}
	return s.finishPlacement(spec, m, taskPU, tier, d)
}

// finishPlacement prices the communication of a placement and packages the
// result.
func (s *Scheduler) finishPlacement(spec JobSpec, m *comm.Matrix, taskPU []int, tier topology.Kind, d int) (*placementResult, bool, error) {
	cores := make([]int, len(taskPU))
	nodes := map[int]bool{}
	for t, pu := range taskPU {
		core, ok := s.coreOfPU[pu]
		if !ok {
			return nil, false, fmt.Errorf("sched: task %d bound to unknown PU %d", t, pu)
		}
		cores[t] = core
		nodes[s.cap.nodeOf[core]] = true
	}
	sorted := append([]int(nil), cores...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, false, fmt.Errorf("sched: core %d assigned twice", sorted[i])
		}
	}
	commCycles := 0.0
	for i := 0; i < m.Order(); i++ {
		m.ForEachNeighbor(i, func(jdx int, vol float64) {
			if jdx != i {
				commCycles += s.mach.TransferCost(taskPU[i], taskPU[jdx], vol)
			}
		})
	}
	return &placementResult{
		cores:  sorted,
		taskPU: append([]int(nil), taskPU...),
		comm:   commCycles,
		tier:   tierName(tier),
		domain: d,
		nodes:  len(nodes),
	}, false, nil
}

// FormatReport renders the per-job table and the aggregate block the
// cmd/sched CLI prints.
func FormatReport(rep *Report, mach *numasim.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s: %d admitted, %d rejected\n", rep.Policy, rep.Admitted, rep.Rejected)
	fmt.Fprintf(&b, "%-10s %6s %10s %10s %10s  %s\n", "job", "tasks", "wait(s)", "service(s)", "cycle(s)", "placement")
	for _, j := range rep.Jobs {
		if j.Rejected {
			fmt.Fprintf(&b, "%-10s %6d %10s %10s %10s  rejected: %s\n", j.Name, j.Tasks, "-", "-", "-", j.RejectReason)
			continue
		}
		notes := ""
		if j.Backfilled {
			notes += " [backfilled]"
		}
		if j.Preemptions > 0 {
			notes += fmt.Sprintf(" [preempted x%d]", j.Preemptions)
		}
		if j.DefragMigrations > 0 {
			notes += fmt.Sprintf(" [defrag x%d]", j.DefragMigrations)
		}
		fmt.Fprintf(&b, "%-10s %6d %10.6f %10.6f %10.6f  %s[%d] over %d node(s)%s\n",
			j.Name, j.Tasks,
			mach.CyclesToSeconds(j.WaitCycles),
			mach.CyclesToSeconds(j.ServiceCycles),
			mach.CyclesToSeconds(j.FinishCycles-j.ArriveCycles),
			j.Tier, j.Domain, j.NodesSpanned, notes)
	}
	fmt.Fprintf(&b, "aggregate job time %.6fs  makespan %.6fs  wait %.6fs\n",
		mach.CyclesToSeconds(rep.AggregateCycles), mach.CyclesToSeconds(rep.MakespanCycles), mach.CyclesToSeconds(rep.WaitCycles))
	fmt.Fprintf(&b, "utilization %.3f  fragmentation %.3f  avg spread %.2f nodes\n",
		rep.BusyUtilization, rep.FragmentationAvg, rep.AvgSpread)
	fmt.Fprintf(&b, "backfills %d  preemptions %d (respawn %.6fs)  defrag moves %d (%.6fs)\n",
		rep.Backfills, rep.Preemptions, mach.CyclesToSeconds(rep.RespawnCycles),
		rep.DefragMigrations, mach.CyclesToSeconds(rep.DefragCostCycles))
	return b.String()
}
