package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

func TestBuildOptionsValidation(t *testing.T) {
	cases := []struct {
		name                      string
		policy, fit, queue        string
		backfill, preempt, defrag bool
		defragThr                 float64
		want                      sched.Options
		wantErr                   string
	}{
		{name: "defaults", policy: "topo-aware", fit: "best", queue: "wait",
			want: sched.Options{Policy: sched.TopoAware, Fit: sched.BestFit, Queue: sched.QueueWait}},
		{name: "blind worst reject", policy: "topo-blind", fit: "worst", queue: "reject",
			want: sched.Options{Policy: sched.TopoBlind, Fit: sched.WorstFit, Queue: sched.QueueReject}},
		{name: "first fit", policy: "first-fit", fit: "best", queue: "wait",
			want: sched.Options{Policy: sched.FirstFit, Fit: sched.BestFit, Queue: sched.QueueWait}},
		{name: "phase-2 stack", policy: "topo-aware", fit: "best", queue: "wait",
			backfill: true, preempt: true, defrag: true, defragThr: 0.25,
			want: sched.Options{Policy: sched.TopoAware, Fit: sched.BestFit, Queue: sched.QueueWait,
				Backfill: true, Preempt: true, Defrag: true, DefragThreshold: 0.25}},
		{name: "unknown policy", policy: "round-robin", fit: "best", queue: "wait", wantErr: "-policy"},
		{name: "unknown fit", policy: "topo-aware", fit: "snuggest", queue: "wait", wantErr: "-fit"},
		{name: "unknown queue", policy: "topo-aware", fit: "best", queue: "drop", wantErr: "-queue"},
		{name: "threshold above one", policy: "topo-aware", fit: "best", queue: "wait",
			defragThr: 1.5, wantErr: "-defrag-threshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := buildOptions(tc.policy, tc.fit, tc.queue, tc.backfill, tc.preempt, tc.defrag, tc.defragThr)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if got.Policy != tc.want.Policy || got.Fit != tc.want.Fit || got.Queue != tc.want.Queue ||
				got.Backfill != tc.want.Backfill || got.Preempt != tc.want.Preempt ||
				got.Defrag != tc.want.Defrag || got.DefragThreshold != tc.want.DefragThreshold {
				t.Errorf("options %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestBuildStreamValidation(t *testing.T) {
	cases := []struct {
		name                string
		jobs                int
		seed                int64
		churn, constraints  float64
		preferred, required string
		priorities          int
		longFrac            float64
		wantErr             string
	}{
		{name: "defaults", jobs: 40, seed: 7, churn: 4, constraints: 0.3, preferred: "node", required: "rack"},
		{name: "unconstrained", jobs: 10, seed: 1, churn: 2},
		{name: "phase-2 mix", jobs: 40, seed: 7, churn: 12, constraints: 0.35,
			preferred: "node", required: "rack", priorities: 3, longFrac: 0.2},
		{name: "negative churn", jobs: 40, seed: 7, churn: -1, constraints: 0.3,
			preferred: "node", required: "rack", wantErr: "churn"},
		{name: "too many jobs", jobs: 1 << 21, seed: 7, churn: 4, constraints: 0.3,
			preferred: "node", required: "rack", wantErr: "jobs"},
		{name: "fraction above one", jobs: 40, seed: 7, churn: 4, constraints: 1.5,
			preferred: "node", required: "rack", wantErr: "fraction"},
		{name: "too many priority classes", jobs: 40, seed: 7, churn: 4,
			priorities: 101, wantErr: "priority classes"},
		{name: "long fraction above one", jobs: 40, seed: 7, churn: 4,
			longFrac: 1.5, wantErr: "long fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildStream(tc.jobs, tc.seed, tc.churn, tc.constraints, tc.preferred, tc.required, tc.priorities, tc.longFrac)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunGeneratedStream pins the end-to-end generated path: the report must
// carry the policy banner, one line per admitted job and the aggregate
// metrics.
func TestRunGeneratedStream(t *testing.T) {
	stream := sched.StreamConfig{Jobs: 6, Seed: 7, Churn: 4,
		ConstraintFraction: 0.3, PreferredTier: "node", RequiredTier: "rack"}
	var buf bytes.Buffer
	err := run(&buf, "rack:2 node:2 pack:1 core:4 pu:1", "", stream,
		sched.Options{Policy: sched.TopoAware})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy topo-aware", "j005", "aggregate job time", "fragmentation"} {
		if !strings.Contains(out, want) {
			t.Errorf("report misses %q:\n%s", want, out)
		}
	}
}

// TestRunWorkloadFile replays a file through -workload, including a
// required-tier constraint and a comment line.
func TestRunWorkloadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.txt")
	content := "# two jobs\n" +
		"job etl arrive=0 work=1e6 tasks=4 pattern=stencil:2x2 vol=4096 required=rack preferred=node\n" +
		"job web arrive=100 work=2e6 tasks=2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run(&buf, "rack:2 node:2 pack:1 core:4 pu:1", path, sched.StreamConfig{},
		sched.Options{Policy: sched.TopoAware})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "etl") || !strings.Contains(out, "web") {
		t.Errorf("report misses the replayed jobs:\n%s", out)
	}
	if !strings.Contains(out, "2 admitted") {
		t.Errorf("report misses the admission count:\n%s", out)
	}
}

// TestRunErrors: each layer's failure surfaces as a clean error.
func TestRunErrors(t *testing.T) {
	stream := sched.StreamConfig{Jobs: 2}
	badFile := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(badFile, []byte("job x arrive=0 work=1 tasks=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, platform, workload, wantErr string
	}{
		{"bad platform", "nonsense", "", "spec"},
		{"missing workload", "rack:2 node:2 pack:1 core:4 pu:1", filepath.Join(t.TempDir(), "nope.txt"), "no such file"},
		{"bad workload line", "rack:2 node:2 pack:1 core:4 pu:1", badFile, "tasks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, tc.platform, tc.workload, stream, sched.Options{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
