// Livermore Kernel 23 end to end, at a laptop-friendly scale, with real
// arithmetic: the paper's §III decomposition (one main + eight frontier
// operations per block) runs under the topology-aware placement module, and
// the result is checked element-for-element against the sequential Jacobi
// reference. The same program also reports its simulated execution time
// under TreeMatch binding versus the unbound baseline.
//
//	go run ./examples/livermore
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/kernels"
	"repro/internal/placement"
)

const (
	rows, cols = 256, 256
	bx, by     = 4, 4
	iters      = 20
	spec       = "pack:4 l3:1 core:4 pu:1" // 16-core, 4-socket mini machine
)

func main() {
	bindSec := run(placement.TreeMatch{}, true)
	nobindSec := run(placement.NoBind{}, false)
	fmt.Printf("\nsimulated time: bind %.4fs, nobind %.4fs (x%.2f)\n",
		bindSec, nobindSec, nobindSec/bindSec)
}

// run executes the LK23 program under one policy and returns the simulated
// time; when validate is set it also checks the numerics.
func run(pol placement.Policy, validate bool) float64 {
	sys, err := repro.NewSystem(repro.SystemOptions{
		TopologySpec: spec, Policy: pol, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := kernels.NewGrid(rows, cols, 2016)
	prog, err := kernels.Build(sys.Runtime(), rows, cols, kernels.BuildOptions{
		BX: bx, BY: by, Iters: iters,
		Costs: kernels.LK23Costs, Grid: g, Cell: g.Cell,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Main operations carry the heavy per-iteration working sets.
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	if err := sys.Run(heavy); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())

	if validate {
		got, err := prog.Result()
		if err != nil {
			log.Fatal(err)
		}
		want := kernels.RunJacobiLK23(g, iters)
		if !got.Equal(want, 0) {
			log.Fatalf("ORWL result differs from the sequential reference (max %g)",
				got.MaxAbsDiff(want))
		}
		fmt.Printf("validated: %d cells equal the sequential Jacobi reference bit for bit\n",
			rows*cols)
	}
	return sys.Seconds()
}
