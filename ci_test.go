// CI-style repository guards: a go vet pass over every package, a gofmt
// formatting guard, a go.mod tidiness check, and a deprecation guard that
// keeps migrated call sites from regressing onto the legacy
// cluster-construction and fabric-stream entry points.
package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGoVet runs `go vet ./...` over the repository, the static-analysis
// step of the CI pipeline.
func TestGoVet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go vet in -short mode")
	}
	cmd := exec.Command("go", "vet", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./... failed:\n%s", out)
	}
}

// TestGofmt mirrors the CI gofmt step in-suite: `gofmt -l` over the
// repository must list no files, so an unformatted file fails `go test`
// locally instead of surfacing only in the workflow.
func TestGofmt(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping gofmt in -short mode")
	}
	cmd := exec.Command("gofmt", "-l", ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("gofmt -l failed: %v\n%s", err, out)
	}
	if files := strings.TrimSpace(string(out)); files != "" {
		t.Fatalf("files need gofmt:\n%s", files)
	}
}

// TestGoModTidy guards against go.mod/go.sum drift: `go mod tidy -diff`
// exits non-zero and prints the needed changes when the module files do not
// match the source's import graph.
func TestGoModTidy(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go mod tidy in -short mode")
	}
	cmd := exec.Command("go", "mod", "tidy", "-diff")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go mod tidy -diff reports drift (run `go mod tidy`):\n%s", out)
	}
}

// deprecatedCallRe matches call sites of the legacy cluster/fabric API: the
// spec-driven Platform surface (NewPlatform, SetLinkStreams) replaced them,
// and the old names survive only as thin wrappers for compatibility.
var deprecatedCallRe = regexp.MustCompile(`\b(NewCluster|ClusterFromSpec|SetFabricStreams|SetFabricLinkStreams)\(`)

// wrapperFiles hold the deprecated wrappers themselves; everything else is
// expected to use the replacement API.
var wrapperFiles = map[string]bool{
	filepath.Join("internal", "numasim", "cluster.go"): true,
	filepath.Join("internal", "numasim", "machine.go"): true,
}

// TestDeprecatedFabricAPIHasNoCallers greps every non-test, non-wrapper Go
// file for direct calls to the deprecated entry points, so migrated call
// sites cannot silently regress. Tests may keep calling the wrappers — that
// is how their equivalence with the new surface stays pinned.
func TestDeprecatedFabricAPIHasNoCallers(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") || wrapperFiles[path] {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			code := line
			if idx := strings.Index(code, "//"); idx >= 0 {
				code = code[:idx]
			}
			if m := deprecatedCallRe.FindString(code); m != "" {
				t.Errorf("%s:%d calls deprecated %s — use the Platform API (NewPlatform / SetLinkStreams)",
					path, i+1, strings.TrimSuffix(m, "("))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
