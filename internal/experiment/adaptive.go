package experiment

import (
	"fmt"

	"repro/internal/orwl"
	"repro/internal/placement"
)

// The adaptive experiment (A8) probes the epoch-based re-placement engine
// with the one workload class a one-shot placement cannot serve: a program
// whose communication pattern shifts mid-run. The paper's pipeline decides
// once, from the statically predicted affinity matrix; after the shift that
// prediction is simply wrong, and only a runtime that feeds the measured
// communication window back into placement can recover.

// PhaseShiftConfig parameterizes the phase-shifting workload: an iterative
// ring of tasks (one per core, LK23-like per-iteration costs) where each
// task exchanges halos with its ring neighbours for the first half of the
// run, then abruptly with its diametrically opposite task for the second
// half. A placement that packs ring segments per socket — optimal for phase
// one — makes every phase-two exchange cross the machine.
type PhaseShiftConfig struct {
	// Cores and CoresPerSocket shape the machine (defaults 48 and 8); one
	// task runs per core. The task count must be even and at least 4 for
	// the opposite pairing to be well defined.
	Cores, CoresPerSocket int
	// Iters is the total iteration count (default 48); the pattern shifts
	// after ShiftAt iterations (default Iters/2).
	Iters, ShiftAt int
	// BlockBytes is each task's working set (default 4 MiB): the data it
	// sweeps per iteration and drags along when migrated.
	BlockBytes int64
	// HaloBytes is the per-iteration volume exchanged with each active
	// partner (default 1 MiB). Inactive partners exchange 8 bytes.
	HaloBytes float64
	// EpochIters is the re-placement interval (default 4).
	EpochIters int
	// Hysteresis and WindowDecay tune the adaptive engine (see
	// placement.AdaptiveOptions).
	Hysteresis, WindowDecay float64
	// Seed drives the simulated OS scheduler (unused while all tasks stay
	// bound, but kept for symmetry with Config).
	Seed int64
}

func (c PhaseShiftConfig) withDefaults() PhaseShiftConfig {
	if c.Cores == 0 {
		c.Cores = 48
	}
	if c.CoresPerSocket == 0 {
		c.CoresPerSocket = 8
	}
	if c.Iters == 0 {
		c.Iters = 48
	}
	if c.ShiftAt == 0 {
		c.ShiftAt = c.Iters / 2
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 4 << 20
	}
	if c.HaloBytes == 0 {
		c.HaloBytes = 1 << 20
	}
	if c.EpochIters == 0 {
		c.EpochIters = 4
	}
	return c
}

// PhaseShiftResult reports one phase-shift run.
type PhaseShiftResult struct {
	Mode    string // "static", "adaptive" or "oracle"
	Seconds float64
	// Stats is the adaptive engine's decision record (zero for static).
	Stats placement.AdaptiveStats
}

// String renders a one-line summary.
func (r PhaseShiftResult) String() string {
	return fmt.Sprintf("%-8s time=%8.3fs epochs=%d applied=%d rebinds=%d",
		r.Mode, r.Seconds, r.Stats.Epochs, r.Stats.Applied, r.Stats.Rebinds)
}

// phaseShiftEps is the volume of an inactive partner handle: the protocol
// still cycles through it every iteration (the handle set is fixed at build
// time), but it carries a negligible 8 bytes.
const phaseShiftEps = 8

// buildPhaseShift constructs the phase-shifting ring on the runtime: task i
// writes its own block location and reads its left, right and opposite
// partners' blocks each iteration, with the heavy volume on the ring
// partners before the shift and on the opposite partner after it. All
// volumes are whole bytes well below 2^53, so every accumulated matrix
// entry is exact and the run is bit-deterministic regardless of goroutine
// interleaving.
func buildPhaseShift(rt *orwl.Runtime, cfg PhaseShiftConfig) error {
	n := cfg.Cores
	if n < 4 || n%2 != 0 {
		return fmt.Errorf("experiment: phase shift needs an even task count >= 4, got %d", n)
	}
	locs := make([]*orwl.Location, n)
	for i := 0; i < n; i++ {
		locs[i] = rt.NewLocation(fmt.Sprintf("blk%d", i), cfg.BlockBytes)
	}
	cells := float64(cfg.BlockBytes / 8)
	for i := 0; i < n; i++ {
		task := rt.AddTask(fmt.Sprintf("p%d", i), nil)
		rL := task.NewHandleVol(locs[(i+n-1)%n], orwl.Read, cfg.HaloBytes, 0)
		rR := task.NewHandleVol(locs[(i+1)%n], orwl.Read, cfg.HaloBytes, 0)
		rO := task.NewHandleVol(locs[(i+n/2)%n], orwl.Read, phaseShiftEps, 0)
		w := task.NewHandleVol(locs[i], orwl.Write, cfg.HaloBytes, 1)
		region := locs[i].Region()
		task.SetFunc(func(t *orwl.Task) error {
			for it := 0; it < cfg.Iters; it++ {
				if it == cfg.ShiftAt {
					// The communication pattern rotates: ring partners go
					// quiet, the opposite task becomes the heavy partner.
					rL.SetVolume(phaseShiftEps)
					rR.SetVolume(phaseShiftEps)
					rO.SetVolume(cfg.HaloBytes)
				}
				last := it == cfg.Iters-1
				for _, h := range []*orwl.Handle{rL, rR, rO} {
					if err := h.Acquire(); err != nil {
						return err
					}
					if err := releaseOrNext(h, last); err != nil {
						return err
					}
				}
				if err := w.Acquire(); err != nil {
					return err
				}
				if p := t.Proc(); p != nil {
					p.Compute(11 * cells) // LK23's flops per cell
					p.SweepWorkingSet(region, cfg.BlockBytes)
				}
				if err := releaseOrNext(w, last); err != nil {
					return err
				}
				t.EndIteration()
			}
			return nil
		})
	}
	return nil
}

// releaseOrNext releases the handle on the last iteration and re-requests
// it (the iterative ORWL primitive) otherwise.
func releaseOrNext(h *orwl.Handle, last bool) error {
	if last {
		return h.Release()
	}
	return h.ReleaseAndRequest()
}

// RunPhaseShift executes the phase-shifting workload under one of three
// placement modes:
//
//   - "static": the paper's one-shot pipeline — TreeMatch from the static
//     affinity matrix, never revisited;
//   - "adaptive": the epoch-based engine — same initial placement, then a
//     re-placement decision from the measured window every EpochIters
//     iterations, applied only when the predicted gain clears the modeled
//     migration cost;
//   - "oracle": the adaptive engine with free migration and no hysteresis,
//     an upper bound on what re-placement could gain.
func RunPhaseShift(mode string, cfg PhaseShiftConfig) (PhaseShiftResult, error) {
	cfg = cfg.withDefaults()
	mach, err := Machine(Config{Cores: cfg.Cores, CoresPerSocket: cfg.CoresPerSocket})
	if err != nil {
		return PhaseShiftResult{}, err
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	if err := buildPhaseShift(rt, cfg); err != nil {
		return PhaseShiftResult{}, err
	}
	var eng *placement.AdaptiveEngine
	switch mode {
	case "static":
		a, err := placement.Place(rt, placement.TreeMatch{})
		if err != nil {
			return PhaseShiftResult{}, err
		}
		placement.SetContention(mach, a, nil)
	case "adaptive", "oracle":
		eng, err = placement.PlaceAdaptive(rt, placement.AdaptiveOptions{
			Base:          placement.TreeMatch{},
			EpochIters:    cfg.EpochIters,
			Hysteresis:    cfg.Hysteresis,
			WindowDecay:   cfg.WindowDecay,
			FreeMigration: mode == "oracle",
		})
		if err != nil {
			return PhaseShiftResult{}, err
		}
		placement.SetContention(mach, eng.Assignment(), nil)
	default:
		return PhaseShiftResult{}, fmt.Errorf("experiment: unknown phase-shift mode %q", mode)
	}
	if err := rt.Run(); err != nil {
		return PhaseShiftResult{}, err
	}
	res := PhaseShiftResult{Mode: mode, Seconds: rt.MakespanSeconds()}
	if eng != nil {
		if err := eng.Err(); err != nil {
			return PhaseShiftResult{}, err
		}
		res.Stats = eng.Stats()
	}
	return res, nil
}

// RunAdaptive executes the standard (stationary) LK23 configuration under
// the adaptive engine instead of the one-shot pipeline, for the regression
// half of the adaptive ablation: on a workload whose pattern never changes,
// hysteresis must keep the engine still and the result within migration
// noise of the static placement.
func RunAdaptive(cfg Config, opts placement.AdaptiveOptions) (Result, placement.AdaptiveStats, error) {
	cfg = cfg.withDefaults()
	if opts.EpochIters == 0 {
		opts.EpochIters = cfg.Iters / 5
		if opts.EpochIters < 1 {
			opts.EpochIters = 1
		}
	}
	mach, err := Machine(cfg)
	if err != nil {
		return Result{}, placement.AdaptiveStats{}, err
	}
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: cfg.Seed})
	blocks := cfg.BlocksOverride
	if blocks == 0 {
		blocks = cfg.Cores
	}
	prog, err := buildLK23(rt, cfg, blocks)
	if err != nil {
		return Result{}, placement.AdaptiveStats{}, err
	}
	eng, err := placement.PlaceAdaptive(rt, opts)
	if err != nil {
		return Result{}, placement.AdaptiveStats{}, err
	}
	a := eng.Assignment()
	heavy := make([]bool, len(prog.Tasks))
	for i := range heavy {
		heavy[i] = i%9 == 0
	}
	placement.SetContention(mach, a, heavy)
	if err := rt.Run(); err != nil {
		return Result{}, placement.AdaptiveStats{}, err
	}
	if err := eng.Err(); err != nil {
		return Result{}, placement.AdaptiveStats{}, err
	}
	final := eng.Assignment()
	res := Result{
		Impl:    ORWLBind,
		Cores:   cfg.Cores,
		Blocks:  blocks,
		Tasks:   len(prog.Tasks),
		Seconds: rt.MakespanSeconds(),
		Policy:  final.Policy,
	}
	for _, t := range prog.Tasks {
		res.Migrations += t.Proc().Stats().Migrations
	}
	return res, eng.Stats(), nil
}

// AblationAdaptive (A8) compares one-shot static placement against the
// epoch-based adaptive engine and its free-migration oracle bound, on the
// two regimes that matter: the phase-shifting workload (where adapting must
// win) and the stationary LK23 workload (where adapting must not lose).
func AblationAdaptive(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	ps := PhaseShiftConfig{
		Cores:          cfg.Cores,
		CoresPerSocket: cfg.CoresPerSocket,
		Seed:           cfg.Seed,
	}
	var rows []AblationRow
	for _, mode := range []string{"static", "adaptive", "oracle"} {
		res, err := RunPhaseShift(mode, ps)
		if err != nil {
			return nil, fmt.Errorf("ablation adaptive, phase-shift %s: %w", mode, err)
		}
		detail := ""
		if mode != "static" {
			detail = fmt.Sprintf("epochs=%d applied=%d rebinds=%d",
				res.Stats.Epochs, res.Stats.Applied, res.Stats.Rebinds)
		}
		rows = append(rows, AblationRow{Name: "phase/" + mode, Seconds: res.Seconds, Detail: detail})
	}
	static, err := Run(ORWLBind, cfg)
	if err != nil {
		return nil, fmt.Errorf("ablation adaptive, stationary static: %w", err)
	}
	rows = append(rows, AblationRow{Name: "lk23/static", Seconds: static.Seconds})
	adaptive, st, err := RunAdaptive(cfg, placement.AdaptiveOptions{})
	if err != nil {
		return nil, fmt.Errorf("ablation adaptive, stationary adaptive: %w", err)
	}
	rows = append(rows, AblationRow{
		Name:    "lk23/adaptive",
		Seconds: adaptive.Seconds,
		Detail:  fmt.Sprintf("epochs=%d applied=%d rebinds=%d", st.Epochs, st.Applied, st.Rebinds),
	})
	return rows, nil
}
