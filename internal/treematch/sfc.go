package treematch

import (
	"fmt"

	"repro/internal/comm"
)

// Space-filling-curve embedding for grid-like fabrics. A torus prices
// communication by routed hop distance, so an assignment that lays a
// communication chain along a curve visiting every torus cell exactly once —
// with consecutive cells always adjacent — keeps heavy neighbours one hop
// apart. A Hilbert curve does this with good locality on power-of-two square
// grids; a snake (boustrophedon) walk covers every other shape, still with
// unit steps between consecutive cells.

// SFCOrder returns a space-filling visiting order of the cells of a grid
// with the given dimensions, as row-major cell indices (last dimension
// fastest, matching the torus node numbering): a Hilbert curve on a
// power-of-two square 2-D grid, a snake walk otherwise. Consecutive cells of
// the order are always grid-adjacent (distance one, ignoring wrap).
func SFCOrder(dims []int) []int {
	if len(dims) == 2 && dims[0] == dims[1] && isPowerOfTwo(dims[0]) {
		n := dims[0]
		order := make([]int, n*n)
		for d := range order {
			x, y := hilbertD2XY(n, d)
			order[d] = x*n + y
		}
		return order
	}
	cells := snakeCells(dims)
	order := make([]int, len(cells))
	for i, c := range cells {
		id := 0
		for k := range dims {
			id = id*dims[k] + c[k]
		}
		order[i] = id
	}
	return order
}

func isPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// hilbertD2XY converts a distance along the order-n Hilbert curve (n a power
// of two) into grid coordinates, by the standard bit-twiddling construction.
func hilbertD2XY(n, d int) (x, y int) {
	t := d
	for s := 1; s < n; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// snakeCells walks an arbitrary grid boustrophedon: the innermost dimensions
// reverse direction on every step of the dimension above, so consecutive
// cells always differ by one in exactly one coordinate.
func snakeCells(dims []int) [][]int {
	if len(dims) == 0 {
		return [][]int{{}}
	}
	if len(dims) == 1 {
		out := make([][]int, dims[0])
		for i := range out {
			out[i] = []int{i}
		}
		return out
	}
	sub := snakeCells(dims[1:])
	out := make([][]int, 0, dims[0]*len(sub))
	for i := 0; i < dims[0]; i++ {
		if i%2 == 0 {
			for _, c := range sub {
				out = append(out, append([]int{i}, c...))
			}
		} else {
			for k := len(sub) - 1; k >= 0; k-- {
				out = append(out, append([]int{i}, sub[k]...))
			}
		}
	}
	return out
}

// sfcCellCount returns the cell count of a grid, 0 for nil dims (so the
// comparison against a group count can gate on "declared and matching").
func sfcCellCount(dims []int) int {
	if len(dims) == 0 {
		return 0
	}
	total := 1
	for _, d := range dims {
		total *= d
	}
	return total
}

// chainPartition chops the affinity-attachment chain into k consecutive
// runs of per entities each — the partition shape a space-filling-curve
// embedding wants, since adjacent runs sit on adjacent curve stretches.
func chainPartition(m *comm.Matrix, k, per int) [][]int {
	aff, vol := pairAffinity(m)
	chain := affinityOrder(aff, vol)
	groups := make([][]int, k)
	for i, e := range chain {
		gi := i / per
		if gi >= k {
			gi = k - 1
		}
		groups[gi] = append(groups[gi], e)
	}
	return groups
}

// SFCSeed builds a candidate assignment (entity → grid cell, as row-major
// indices) for AssignByDistance on a grid-like fabric: the entities are
// chained by accumulated affinity (affinityOrder) and laid out along the
// space-filling curve, so heavy partners land on adjacent cells. The matrix
// order must equal the cell count.
func SFCSeed(dims []int, m *comm.Matrix) ([]int, error) {
	total := 1
	for _, d := range dims {
		total *= d
	}
	if m.Order() != total {
		return nil, fmt.Errorf("treematch: SFCSeed maps %d entities onto a %d-cell grid", m.Order(), total)
	}
	aff, vol := pairAffinity(m)
	chain := affinityOrder(aff, vol)
	curve := SFCOrder(dims)
	seed := make([]int, total)
	for k, e := range chain {
		seed[e] = curve[k]
	}
	return seed, nil
}
