// Command ablate runs the ablation studies of the reproduction: the design
// choices of the paper's placement module isolated one at a time (see
// DESIGN.md §4 for the index).
//
//	ablate                  # run every ablation at a reduced scale
//	ablate -exp policies    # placement policies (A1)
//	ablate -exp control     # control-thread strategies (A2)
//	ablate -exp oversub     # oversubscription (A3)
//	ablate -exp granularity # block granularity (A4)
//	ablate -exp topology    # machine shapes (A5)
//	ablate -exp distribute  # NUMA distribution (A6)
//	ablate -exp ompsched    # OpenMP loop schedules (A7)
//	ablate -exp adaptive    # epoch-based adaptive re-placement (A8)
//	ablate -exp cluster     # multi-node hierarchical placement (A9)
//	ablate -exp rack        # rack-tier fabric, three-level placement (A10)
//	ablate -exp hetero      # heterogeneous pod-tier platform (A11)
//	ablate -exp shift       # cross-fabric adaptive migration (A12)
//	ablate -exp torus       # torus halo exchange, routed fabric (A13)
//	ablate -exp fault       # fault injection, mid-run resilience (A14)
//	ablate -exp sched       # online multi-tenant scheduler (A15)
//	ablate -exp sched2      # backfill, preemption, defragmentation (A16)
//	ablate -exp scale       # placement-latency benchmark tier (S1)
//	ablate -full            # paper-scale matrix and iterations
//
// -exp also accepts a comma-separated list (-exp adaptive,cluster,shift).
// The scale study is a benchmark tier, not an ablation: it reports the
// wall-clock latency of the placement pipeline itself on datacenter-scale
// grids (tasks × nodes set by -scale-tasks/-scale-nodes), so it is excluded
// from "all" and must be selected by name.
// The fault ablation's failure schedule can be overridden from the command
// line: -fault-kill "node@epoch", -fault-degrade "level:link:factor@epoch"
// and -fault-sever "level:link@epoch" each accept a comma-separated list,
// and together they replace the default correlated kill+degrade scenario.
// The scheduler ablation's workload and policy knobs are likewise
// overridable: -sched-jobs and -sched-churn reshape the job stream,
// -sched-constraints sets the constrained fraction, and -sched-fit /
// -sched-queue select the domain scoring rule (best, worst) and the
// required-tier-full policy (wait, reject) of every arm. The same -sched-*
// knobs reshape the phase-2 ablation's stream too, and -sched2-priorities /
// -sched2-defrag-threshold additionally set its priority-class count and
// the fragmentation weight that arms defragmentation.
// With -json the results are emitted as one machine-readable JSON document
// on stdout — per-ablation rows with simulated seconds and cycle counts,
// plus the asserted orderings and their verdicts — and the exit status is
// non-zero when any asserted ordering is violated. The CI bench-smoke job
// runs the reduced-shape A8–A12 this way and archives the document as the
// BENCH artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/sched"
	"repro/internal/topology"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "ablation: policies, control, oversub, granularity, topology, distribute, ompsched, adaptive, cluster, rack, hetero, shift, torus, fault, sched, sched2, scale, all (a comma-separated list selects several; scale is excluded from all)")
		full         = flag.Bool("full", false, "paper-scale configuration (16384^2, 100 iterations, 192 cores; overrides -rows/-cols/-iters/-cores)")
		jsonF        = flag.Bool("json", false, "emit one machine-readable JSON report on stdout (rows, cycle counts, ordering verdicts); exit non-zero on any ordering violation")
		seed         = flag.Int64("seed", 7, "simulated OS scheduler seed")
		rows         = flag.Int("rows", 4096, "matrix rows (reduced scale)")
		cols         = flag.Int("cols", 4096, "matrix columns (reduced scale)")
		iters        = flag.Int("iters", 10, "iterations (reduced scale)")
		cores        = flag.Int("cores", 48, "number of cores (reduced scale)")
		scaleTasks   = flag.String("scale-tasks", "", "comma-separated task counts for -exp scale (default 10000,100000)")
		scaleNodes   = flag.String("scale-nodes", "", "comma-separated cluster-node counts for -exp scale (default 100,1000,10000)")
		faultKill    = flag.String("fault-kill", "", "comma-separated \"node@epoch\" node kills for -exp fault (any fault flag overrides the default correlated failure)")
		faultDegrade = flag.String("fault-degrade", "", "comma-separated \"level:link:factor@epoch\" fabric-link degrades for -exp fault")
		faultSever   = flag.String("fault-sever", "", "comma-separated \"level:link@epoch\" fabric-link severs for -exp fault")
		schedJobs    = flag.Int("sched-jobs", 0, "jobs per stream for -exp sched (0 = experiment default)")
		schedChurn   = flag.Float64("sched-churn", 0, "arrival-rate churn factor for -exp sched (0 = experiment default)")
		schedConstr  = flag.Float64("sched-constraints", 0, "fraction of jobs carrying topology constraints for -exp sched (0 = experiment default)")
		schedFit     = flag.String("sched-fit", "", "domain scoring rule for -exp sched: best or worst (empty = best)")
		schedQueue   = flag.String("sched-queue", "", "required-tier-full policy for -exp sched: wait or reject (empty = wait)")
		sched2Prio   = flag.Int("sched2-priorities", 0, "priority-class count of the -exp sched2 stream (0 = experiment default)")
		sched2Defrag = flag.Float64("sched2-defrag-threshold", 0, "fragmentation weight in [0,1] arming the -exp sched2 full arm's defragmentation (0 = always armed)")
	)
	flag.Parse()

	cfg, err := buildConfig(*rows, *cols, *iters, *cores, *seed, *full)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
	if scaleOverrides.tasks, err = parseIntList(*scaleTasks); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: -scale-tasks: %v\n", err)
		os.Exit(1)
	}
	if scaleOverrides.nodes, err = parseIntList(*scaleNodes); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: -scale-nodes: %v\n", err)
		os.Exit(1)
	}
	if faultOverrides.events, err = parseFaultEvents(*faultKill, *faultDegrade, *faultSever); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
	if err = buildSchedOverrides(*schedJobs, *schedChurn, *schedConstr, *schedFit, *schedQueue); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
	if err = buildSched2Overrides(*sched2Prio, *sched2Defrag); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
	if err := run(os.Stdout, cfg, *exp, *jsonF); err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
}

// ablation is one runnable study of the suite.
type ablation struct {
	name  string // -exp selector
	id    string // stable identifier (A1..A13)
	title string
	run   func(experiment.Config) ([]experiment.AblationRow, error)
}

// ablations returns the full suite in report order.
func ablations() []ablation {
	return []ablation{
		{"policies", "A1", "A1: placement policies (LK23, blocks = cores)", experiment.AblationPolicies},
		{"control", "A2", "A2: control-thread strategies", experiment.AblationControlThreads},
		{"oversub", "A3", "A3: oversubscription (blocks vs cores)", experiment.AblationOversubscription},
		{"granularity", "A4", "A4: block granularity", experiment.AblationGranularity},
		{"topology", "A5", "A5: topology shapes (192 cores each)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationTopology(c, experiment.DefaultTopologyCases())
		}},
		{"distribute", "A6", "A6: NUMA distribution (cluster + distribute vs cluster only)", experiment.AblationDistribution},
		{"ompsched", "A7", "A7: OpenMP loop schedules vs bound ORWL", experiment.AblationOMPSchedule},
		{"adaptive", "A8", "A8: adaptive re-placement (static vs epoch feedback vs oracle)", experiment.AblationAdaptive},
		{"cluster", "A9", "A9: multi-node placement (hierarchical vs flat vs rr-nodes vs one big node)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationCluster(experiment.ClusterConfigFrom(c))
		}},
		{"rack", "A10", "A10: rack-tier fabric (fabric-aware vs fabric-blind vs flat treematch)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationRack(experiment.RackConfigFrom(c))
		}},
		{"hetero", "A11", "A11: heterogeneous pod-tier platform (aware vs capacity-blind vs depth-blind)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationHetero(experiment.HeteroConfigFrom(c))
		}},
		{"shift", "A12", "A12: cross-fabric adaptive migration (static vs adaptive-flat vs adaptive-fabric vs oracle)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationShift(experiment.ShiftConfigFrom(c))
		}},
		{"torus", "A13", "A13: torus halo exchange on the routed fabric (sfc vs tree-matched vs rr)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			return experiment.AblationTorus(experiment.TorusConfigFrom(c))
		}},
		{"fault", "A14", "A14: fault injection and mid-run resilience (fault-aware vs spread vs fault-blind vs static-respawn)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			fc := experiment.FaultConfigFrom(c)
			fc.Events = faultOverrides.events
			return experiment.AblationFault(fc)
		}},
		{"sched", "A15", "A15: online multi-tenant scheduler (topo-aware vs topo-blind vs first-fit)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			sc := experiment.SchedConfigFrom(c)
			sc.Jobs = schedOverrides.jobs
			sc.Churn = schedOverrides.churn
			sc.ConstraintFraction = schedOverrides.constraints
			sc.Fit = schedOverrides.fit
			sc.Queue = schedOverrides.queue
			return experiment.AblationSched(sc)
		}},
		{"sched2", "A16", "A16: phase-2 scheduler policies (backfill + preemption + defrag vs backfill-only vs fifo)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			sc := experiment.Sched2ConfigFrom(c)
			sc.Jobs = schedOverrides.jobs
			sc.Churn = schedOverrides.churn
			sc.ConstraintFraction = schedOverrides.constraints
			sc.Fit = schedOverrides.fit
			sc.Queue = schedOverrides.queue
			sc.PriorityClasses = sched2Overrides.priorities
			sc.DefragThreshold = sched2Overrides.defragThreshold
			return experiment.AblationSched2(sc)
		}},
	}
}

// sched2Overrides carries the parsed -sched2-* flag values to the phase-2
// scheduler ablation; zero values select the experiment defaults.
var sched2Overrides struct {
	priorities      int
	defragThreshold float64
}

// buildSched2Overrides validates the -sched2-* flag values; the experiment
// re-validates the assembled configuration.
func buildSched2Overrides(priorities int, defragThreshold float64) error {
	if priorities < 0 || priorities > 100 {
		return fmt.Errorf("-sched2-priorities: class count %d outside [0,100]", priorities)
	}
	if defragThreshold < 0 || defragThreshold > 1 {
		return fmt.Errorf("-sched2-defrag-threshold: weight %v outside [0,1]", defragThreshold)
	}
	sched2Overrides.priorities = priorities
	sched2Overrides.defragThreshold = defragThreshold
	return nil
}

// schedOverrides carries the parsed -sched-* flag values to the scheduler
// ablation; zero values select the experiment defaults.
var schedOverrides struct {
	jobs        int
	churn       float64
	constraints float64
	fit         sched.Fit
	queue       sched.QueuePolicy
}

// buildSchedOverrides validates the -sched-* flag values. The numeric knobs
// only enforce the flag-layer contract (non-negative; zero = default); the
// stream generator re-validates the assembled configuration.
func buildSchedOverrides(jobs int, churn, constraints float64, fit, queue string) error {
	if jobs < 0 {
		return fmt.Errorf("-sched-jobs: job count %d must be non-negative", jobs)
	}
	if churn < 0 {
		return fmt.Errorf("-sched-churn: churn %v must be non-negative", churn)
	}
	if constraints < 0 || constraints > 1 {
		return fmt.Errorf("-sched-constraints: fraction %v outside [0,1]", constraints)
	}
	schedOverrides.jobs = jobs
	schedOverrides.churn = churn
	schedOverrides.constraints = constraints
	schedOverrides.fit = sched.BestFit
	if fit != "" {
		f, err := sched.ParseFit(fit)
		if err != nil {
			return fmt.Errorf("-sched-fit: %v", err)
		}
		schedOverrides.fit = f
	}
	schedOverrides.queue = sched.QueueWait
	if queue != "" {
		q, err := sched.ParseQueuePolicy(queue)
		if err != nil {
			return fmt.Errorf("-sched-queue: %v", err)
		}
		schedOverrides.queue = q
	}
	return nil
}

// scaleOverrides carries the -scale-tasks/-scale-nodes flag values to the
// scale study; empty slices select the experiment.ScaleConfig defaults.
var scaleOverrides struct{ tasks, nodes []int }

// extraAblations returns the selectable-by-name studies excluded from "all":
// the benchmark tiers, which measure real wall time rather than simulated
// program time and would dominate a full ablation run.
func extraAblations() []ablation {
	return []ablation{
		{"scale", "S1", "S1: placement latency at datacenter scale (wall time)", func(c experiment.Config) ([]experiment.AblationRow, error) {
			sc := experiment.ScaleConfigFrom(c)
			sc.Tasks = scaleOverrides.tasks
			sc.Nodes = scaleOverrides.nodes
			return experiment.AblationScale(sc)
		}},
	}
}

// faultOverrides carries the parsed -fault-kill/-fault-degrade/-fault-sever
// events to the fault ablation; nil keeps the experiment's built-in
// correlated kill+degrade scenario.
var faultOverrides struct{ events []experiment.FaultEventSpec }

// parseFaultEvents parses the fault-schedule flags into experiment
// coordinates. The flag layer enforces the entry syntax (including the
// 1-based epoch); whether the named nodes, links and epochs exist on the
// built platform — and whether the entries conflict — is checked by the
// fault experiment itself, after the shape is known. All three flags empty
// yields nil, selecting the default failure scenario.
func parseFaultEvents(kill, degrade, sever string) ([]experiment.FaultEventSpec, error) {
	var out []experiment.FaultEventSpec
	for _, entry := range splitList(kill) {
		parts, epoch, err := parseFaultEntry("-fault-kill", entry, 1)
		if err != nil {
			return nil, err
		}
		node, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("-fault-kill: bad node %q in %q", parts[0], entry)
		}
		out = append(out, experiment.FaultEventSpec{
			Epoch: epoch, Kind: topology.FaultKillNode, Node: node,
		})
	}
	for _, entry := range splitList(degrade) {
		parts, epoch, err := parseFaultEntry("-fault-degrade", entry, 3)
		if err != nil {
			return nil, err
		}
		level, err1 := strconv.Atoi(parts[0])
		link, err2 := strconv.Atoi(parts[1])
		factor, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("-fault-degrade: bad level:link:factor in %q", entry)
		}
		out = append(out, experiment.FaultEventSpec{
			Epoch: epoch, Kind: topology.FaultDegradeEdge, Level: level, Link: link, Factor: factor,
		})
	}
	for _, entry := range splitList(sever) {
		parts, epoch, err := parseFaultEntry("-fault-sever", entry, 2)
		if err != nil {
			return nil, err
		}
		level, err1 := strconv.Atoi(parts[0])
		link, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("-fault-sever: bad level:link in %q", entry)
		}
		out = append(out, experiment.FaultEventSpec{
			Epoch: epoch, Kind: topology.FaultSeverEdge, Level: level, Link: link,
		})
	}
	return out, nil
}

// parseFaultEntry splits one "body@epoch" fault-flag entry into the
// colon-separated body fields (exactly wantParts of them) and the epoch.
func parseFaultEntry(flagName, entry string, wantParts int) ([]string, int, error) {
	body, epochStr, ok := strings.Cut(entry, "@")
	if !ok {
		return nil, 0, fmt.Errorf("%s: entry %q has no @epoch", flagName, entry)
	}
	epoch, err := strconv.Atoi(epochStr)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: bad epoch %q in %q", flagName, epochStr, entry)
	}
	if epoch < 1 {
		return nil, 0, fmt.Errorf("%s: epoch %d in %q is not 1-based", flagName, epoch, entry)
	}
	parts := strings.Split(body, ":")
	if len(parts) != wantParts {
		return nil, 0, fmt.Errorf("%s: entry %q has %d field(s), want %d", flagName, entry, len(parts), wantParts)
	}
	return parts, epoch, nil
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty items; an empty value yields nil.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseIntList parses a comma-separated list of positive integers; an empty
// string yields nil.
func parseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", part)
		}
		if v < 1 {
			return nil, fmt.Errorf("count %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// selectAblations resolves a -exp value ("all", one name, or a
// comma-separated list) against the suite, preserving report order. "all"
// selects the sixteen ablations; the benchmark tiers (extraAblations) only
// run when named explicitly.
func selectAblations(exp string) ([]ablation, error) {
	all := ablations()
	if exp == "all" {
		return all, nil
	}
	all = append(all, extraAblations()...)
	want := map[string]bool{}
	for _, name := range strings.Split(exp, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}
	var out []ablation
	for _, a := range all {
		if want[a.name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// run executes the selected ablations and renders them human-readable or as
// the machine-readable JSON report. In JSON mode an ordering violation is
// reported through the error return after the full document is written, so
// a CI consumer archives the evidence and still fails the job.
func run(w io.Writer, cfg experiment.Config, exp string, asJSON bool) error {
	selected, err := selectAblations(exp)
	if err != nil {
		return err
	}
	var report benchReport
	violated := false
	for _, a := range selected {
		rows, err := a.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %v", a.name, err)
		}
		if !asJSON {
			fmt.Fprint(w, experiment.FormatAblation(a.title, rows))
			fmt.Fprintln(w)
			continue
		}
		res := benchAblation{Exp: a.name, ID: a.id, Title: a.title}
		for _, r := range rows {
			res.Rows = append(res.Rows, benchRow{
				Name:        r.Name,
				Seconds:     r.Seconds,
				Cycles:      experiment.SimCycles(r.Seconds),
				Detail:      r.Detail,
				WallSeconds: r.WallSeconds,
			})
		}
		for _, o := range experiment.AblationOrderings(a.name) {
			ok := experiment.CheckOrderings(rows, []experiment.Ordering{o}) == nil
			if !ok {
				violated = true
			}
			res.Orderings = append(res.Orderings, benchOrdering{Relation: o.String(), OK: ok})
		}
		report.Ablations = append(report.Ablations, res)
	}
	if asJSON {
		report.Schema = benchSchema
		report.Seed = cfg.Seed
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		if violated {
			return fmt.Errorf("asserted ablation ordering violated (see the JSON report)")
		}
	}
	return nil
}

// benchSchema versions the JSON document; bump on incompatible changes.
const benchSchema = "repro-bench/1"

// benchReport is the machine-readable bench document of -json mode.
type benchReport struct {
	Schema    string          `json:"schema"`
	Seed      int64           `json:"seed"`
	Ablations []benchAblation `json:"ablations"`
}

// benchAblation is one ablation's rows and ordering verdicts.
type benchAblation struct {
	Exp       string          `json:"exp"`
	ID        string          `json:"id"`
	Title     string          `json:"title"`
	Rows      []benchRow      `json:"rows"`
	Orderings []benchOrdering `json:"orderings,omitempty"`
}

// benchRow is one configuration's simulated cost. Benchmark-tier rows carry
// wall_seconds (real pipeline latency) instead of a simulated cost.
type benchRow struct {
	Name        string  `json:"name"`
	Seconds     float64 `json:"seconds"`
	Cycles      float64 `json:"cycles"`
	Detail      string  `json:"detail,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// benchOrdering is one asserted relation and whether it held.
type benchOrdering struct {
	Relation string `json:"relation"`
	OK       bool   `json:"ok"`
}

// buildConfig assembles and validates the ablation configuration from the
// flag values; -full overrides the scale flags with the paper's setup.
func buildConfig(rows, cols, iters, cores int, seed int64, full bool) (experiment.Config, error) {
	cfg := experiment.Config{Rows: rows, Cols: cols, Iters: iters, Cores: cores, Seed: seed}
	if full {
		cfg = experiment.Config{Seed: seed}
	}
	if err := cfg.Validate(); err != nil {
		return experiment.Config{}, err
	}
	return cfg, nil
}
