package main

import (
	"strings"
	"testing"
)

func TestBuildConfigValidation(t *testing.T) {
	tests := []struct {
		name                     string
		rows, cols, iters, cores int
		full                     bool
		wantErr                  string
	}{
		{"reduced scale", 4096, 4096, 10, 48, false, ""},
		{"full overrides bad scale flags", -1, -1, -1, -1, true, ""},
		{"negative cores", 4096, 4096, 10, -48, false, "core count"},
		{"tiny grid", 2, 4096, 10, 48, false, "too small"},
		{"negative iters", 4096, 4096, -10, 48, false, "iteration count"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildConfig(tc.rows, tc.cols, tc.iters, tc.cores, 7, tc.full)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted invalid config, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
