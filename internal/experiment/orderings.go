package experiment

import (
	"errors"
	"fmt"

	"repro/internal/topology"
)

// The asserted ablation orderings, shared by the test suite, the bench
// harness (bench_test.go) and the machine-readable bench pipeline
// (cmd/ablate -json): each beyond-the-paper ablation states which arms must
// come out ahead, and every consumer checks the same statements, so a
// placement regression cannot pass one gate and slip through another.

// Ordering is one asserted relation between two ablation rows: the row
// named Before must finish in no more (strictly less, when Strict) simulated
// time than the row named After.
type Ordering struct {
	Before, After string
	Strict        bool
}

// String renders the relation, e.g. "rack/rack-aware < rack/flat".
func (o Ordering) String() string {
	op := "<="
	if o.Strict {
		op = "<"
	}
	return fmt.Sprintf("%s %s %s", o.Before, op, o.After)
}

// AblationOrderings returns the asserted orderings of one ablation,
// identified by its cmd/ablate experiment name. Ablations without a pinned
// ordering (the paper-reproduction sweeps, where the interesting output is
// the whole curve) return nil.
func AblationOrderings(exp string) []Ordering {
	switch exp {
	case "adaptive": // A8
		return []Ordering{
			{Before: "phase/adaptive", After: "phase/static", Strict: true},
			{Before: "phase/oracle", After: "phase/adaptive"},
		}
	case "cluster": // A9
		// Strict against the affinity-blind baseline; flat treematch can tie
		// exactly when both policies find the same optimal partition (the
		// reduced 4-node shape does; see TestAblationCluster).
		return []Ordering{
			{Before: "cluster/hierarchical", After: "cluster/flat"},
			{Before: "cluster/hierarchical", After: "cluster/rr-nodes", Strict: true},
		}
	case "rack": // A10
		return []Ordering{
			{Before: "rack/rack-aware", After: "rack/rack-blind", Strict: true},
			{Before: "rack/rack-blind", After: "rack/flat", Strict: true},
		}
	case "hetero": // A11
		return []Ordering{
			{Before: "hetero/aware", After: "hetero/capacity-blind", Strict: true},
			{Before: "hetero/capacity-blind", After: "hetero/depth-blind", Strict: true},
		}
	case "shift": // A12
		return []Ordering{
			{Before: "shift/adaptive-fabric", After: "shift/adaptive-flat", Strict: true},
			{Before: "shift/adaptive-flat", After: "shift/static", Strict: true},
			{Before: "shift/oracle", After: "shift/adaptive-fabric"},
		}
	case "torus": // A13
		return []Ordering{
			{Before: "torus/sfc", After: "torus/tree-matched", Strict: true},
			{Before: "torus/tree-matched", After: "torus/rr", Strict: true},
		}
	case "fault": // A14
		return []Ordering{
			{Before: "fault/fault-aware", After: "fault/fault-blind", Strict: true},
			{Before: "fault/fault-blind", After: "fault/static-respawn", Strict: true},
			{Before: "fault/spread", After: "fault/static-respawn", Strict: true},
		}
	case "sched": // A15
		return []Ordering{
			{Before: "sched/topo-aware", After: "sched/topo-blind", Strict: true},
			{Before: "sched/topo-blind", After: "sched/first-fit", Strict: true},
		}
	case "sched2": // A16
		return []Ordering{
			{Before: "sched2/full", After: "sched2/backfill", Strict: true},
			{Before: "sched2/backfill", After: "sched2/fifo", Strict: true},
		}
	}
	return nil
}

// CheckOrderings verifies every asserted ordering against a set of ablation
// rows and returns the joined violations (nil when all hold). A relation
// whose rows are missing is itself a violation: a renamed arm must not
// silently disable its assertion.
func CheckOrderings(rows []AblationRow, orderings []Ordering) error {
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Seconds
	}
	var errs []error
	for _, o := range orderings {
		before, okB := byName[o.Before]
		after, okA := byName[o.After]
		if !okB || !okA {
			errs = append(errs, fmt.Errorf("ordering %q: missing row (have %v)", o, names(rows)))
			continue
		}
		if (o.Strict && !(before < after)) || (!o.Strict && before > after) {
			errs = append(errs, fmt.Errorf("ordering %q violated: %.6fs vs %.6fs", o, before, after))
		}
	}
	return errors.Join(errs...)
}

func names(rows []AblationRow) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Name
	}
	return out
}

// SimCycles converts a simulated-seconds figure to cycles of the default
// simulated clock, the unit the machine model accumulates internally. Every
// experiment builds its machines with the default attributes, so this is the
// exact inverse of numasim.Machine.CyclesToSeconds for the reported rows.
func SimCycles(seconds float64) float64 {
	return seconds * topology.DefaultAttrs().ClockHz
}
