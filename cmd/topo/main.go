// Command topo inspects a synthetic hardware topology: the tree, the
// NUMA distance table (SLIT style) and the PU-to-PU latency model.
//
//	topo -spec "pack:24 l3:1 core:8 pu:1"
//	topo -spec "pack:2 numa:2 core:4 pu:2" -latency
//	topo -spec "node:4 pack:2 core:8"                # a 4-machine cluster
//	topo -spec "rack:2 node:4 pack:2 core:8"         # two racks of 4 machines
//	topo -spec "pod:2 rack:2 node:2 pack:1 core:4"   # three switch tiers
//	topo -spec "rack:2 node:{pack:2 core:8 | pack:1 core:4}"  # heterogeneous
//	topo -spec "torus:4x4 pack:1 core:4"             # 16-node 2-D torus
//	topo -spec "dragonfly:2,4,2 pack:1 core:4"       # 2 groups x 4 routers x 2 nodes
//
// Shaped (torus/dragonfly) fabrics additionally print the routed fabric
// graph: edge classes and a worked example route.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/topology"
)

func main() {
	var (
		spec    = flag.String("spec", "pack:24 l3:1 core:8 pu:1", "topology spec")
		latency = flag.Bool("latency", false, "print the PU-to-PU latency matrix (small machines only)")
	)
	flag.Parse()

	if err := run(*spec, *latency, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "topo: %v\n", err)
		os.Exit(1)
	}
}

// run renders the topology report for a spec onto w; it is the whole
// command behind the flag parsing, separated so tests can drive it. Specs
// are parsed through the platform grammar first, so heterogeneous
// per-member forms render too; plain specs pass through unchanged.
func run(spec string, latency bool, w io.Writer) error {
	if ps, err := topology.ParsePlatform(spec); err == nil {
		if fused, err := ps.FusedSpec(); err == nil {
			spec = fused
		}
	} else if strings.Contains(spec, "{") {
		// Braced member lists exist only in the platform grammar; its error
		// names the offending member, FromSpec's would not.
		return err
	}
	topo, err := topology.FromSpec(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, topo)
	fmt.Fprintf(w, "normalized spec: %s\n\n", topo.Spec())
	fmt.Fprint(w, topo.Render())
	if fabric := topo.RenderFabric(); fabric != "" {
		fmt.Fprintln(w)
		fmt.Fprint(w, fabric)
	}

	fmt.Fprintln(w, "\nNUMA distances (SLIT style, local = 10):")
	for _, row := range topo.NUMADistanceMatrix() {
		for _, d := range row {
			fmt.Fprintf(w, " %3d", d)
		}
		fmt.Fprintln(w)
	}

	if latency {
		if topo.NumPUs() > 32 {
			fmt.Fprintln(w, "\n(latency matrix suppressed: more than 32 PUs)")
			return nil
		}
		fmt.Fprintln(w, "\nPU-to-PU latency (cycles):")
		for _, row := range topo.LatencyMatrix() {
			for _, l := range row {
				fmt.Fprintf(w, " %6.0f", l)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
