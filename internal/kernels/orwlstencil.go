package kernels

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/orwl"
)

// BuildOptions configures the ORWL implementation of a block stencil.
type BuildOptions struct {
	// BX, BY is the block grid (one main + eight frontier tasks per block).
	BX, BY int
	// Iters is the number of Jacobi iterations.
	Iters int
	// Costs feed the machine simulator; use LK23Costs or HeatCosts.
	Costs Costs
	// Grid, when non-nil, enables real arithmetic: block payloads are
	// filled from it and the run produces a Result matching RunJacobi.
	// When nil the program is cost-only: the full lock protocol executes
	// and every virtual-time cost is charged, but no cell is computed —
	// this is how the paper-scale 16384×16384 runs are simulated without
	// 12 GiB of arrays.
	Grid *Grid
	// Cell is the stencil update; required when Grid is non-nil.
	Cell CellFunc
	// ElemBytes is the element size (default 8, double precision).
	ElemBytes int
}

// Program is a built ORWL stencil: the paper's §III decomposition. Task IDs
// follow comm.LK23OpIndex, so the runtime's extracted affinity matrix is
// directly comparable to comm.LK23OpLevel.
type Program struct {
	RT   *orwl.Runtime
	Part Partition
	Opts BuildOptions

	// Tasks holds all 9·BX·BY tasks indexed by comm.LK23OpIndex.
	Tasks []*orwl.Task
	// BlockLoc[y][x] is the block-interior location of block (x,y).
	BlockLoc [][]*orwl.Location
	// FrontierLoc[y][x][d-1] is the location frontier op d exports into
	// (d in OpN..OpSW).
	FrontierLoc [][][]*orwl.Location

	rows, cols int
}

// frontierDirs maps each frontier op to its (dx,dy) block offset; y grows
// southward (with the row index).
var frontierDirs = map[comm.Frontier][2]int{
	comm.OpN: {0, -1}, comm.OpS: {0, 1}, comm.OpE: {1, 0}, comm.OpW: {-1, 0},
	comm.OpNE: {1, -1}, comm.OpNW: {-1, -1}, comm.OpSE: {1, 1}, comm.OpSW: {-1, 1},
}

// opposite returns the frontier direction pointing back at the sender.
func opposite(d comm.Frontier) comm.Frontier {
	switch d {
	case comm.OpN:
		return comm.OpS
	case comm.OpS:
		return comm.OpN
	case comm.OpE:
		return comm.OpW
	case comm.OpW:
		return comm.OpE
	case comm.OpNE:
		return comm.OpSW
	case comm.OpNW:
		return comm.OpSE
	case comm.OpSE:
		return comm.OpNW
	case comm.OpSW:
		return comm.OpNE
	default:
		panic("kernels: not a frontier direction")
	}
}

// stripLen returns the number of elements frontier op d of a block exports:
// a full edge for N/S/E/W, one corner element otherwise.
func stripLen(b Block, d comm.Frontier) int {
	switch d {
	case comm.OpN, comm.OpS:
		return b.W
	case comm.OpE, comm.OpW:
		return b.H
	default:
		return 1
	}
}

// Build constructs the ORWL program for a rows×cols stencil decomposed into
// opts.BX×opts.BY blocks on the given runtime. Placement (Bind/BindControl)
// is applied by the caller between Build and RT.Run.
func Build(rt *orwl.Runtime, rows, cols int, opts BuildOptions) (*Program, error) {
	if opts.ElemBytes == 0 {
		opts.ElemBytes = 8
	}
	if opts.Iters <= 0 {
		return nil, fmt.Errorf("kernels: Iters must be positive")
	}
	if opts.Grid != nil {
		if opts.Grid.Rows != rows || opts.Grid.Cols != cols {
			return nil, fmt.Errorf("kernels: grid is %dx%d, want %dx%d",
				opts.Grid.Rows, opts.Grid.Cols, rows, cols)
		}
		if opts.Cell == nil {
			return nil, fmt.Errorf("kernels: real mode requires a Cell function")
		}
	}
	part, err := NewPartition(rows, cols, opts.BX, opts.BY)
	if err != nil {
		return nil, err
	}
	p := &Program{RT: rt, Part: part, Opts: opts, rows: rows, cols: cols}
	eb := int64(opts.ElemBytes)

	// Locations first: every block's interior plus its eight frontier
	// export locations, in block-major order.
	p.BlockLoc = make([][]*orwl.Location, opts.BY)
	p.FrontierLoc = make([][][]*orwl.Location, opts.BY)
	for y := 0; y < opts.BY; y++ {
		p.BlockLoc[y] = make([]*orwl.Location, opts.BX)
		p.FrontierLoc[y] = make([][]*orwl.Location, opts.BX)
		for x := 0; x < opts.BX; x++ {
			b := part.Block(x, y)
			locB := rt.NewLocation(fmt.Sprintf("B(%d,%d)", x, y), int64(b.Cells())*eb)
			p.BlockLoc[y][x] = locB
			if opts.Grid != nil {
				buf := make([]float64, b.Cells())
				for r := 0; r < b.H; r++ {
					copy(buf[r*b.W:(r+1)*b.W], opts.Grid.ZA[(b.R0+r)*cols+b.C0:(b.R0+r)*cols+b.C0+b.W])
				}
				locB.SetData(buf)
			}
			frontiers := make([]*orwl.Location, 8)
			for d := comm.OpN; d <= comm.OpSW; d++ {
				n := stripLen(b, d)
				loc := rt.NewLocation(fmt.Sprintf("F(%d,%d).%v", x, y, d), int64(n)*eb)
				if opts.Grid != nil {
					loc.SetData(make([]float64, n))
				}
				frontiers[int(d)-1] = loc
			}
			p.FrontierLoc[y][x] = frontiers
		}
	}

	// Tasks in comm.LK23OpIndex order: main then the 8 frontier ops, block
	// by block. The canonical ranks put every frontier handle (rank 0)
	// ahead of every main handle (rank 1), which yields the FIFO cycle
	//   B: [R(frontiers)×8, W(main)]   F: [W(frontier), R(neighbour main)]
	// i.e. frontiers export the iteration-k state before the mains write
	// iteration k+1 — the Jacobi dataflow of the paper's implementation.
	for y := 0; y < opts.BY; y++ {
		for x := 0; x < opts.BX; x++ {
			p.addMainTask(x, y)
			for d := comm.OpN; d <= comm.OpSW; d++ {
				p.addFrontierTask(x, y, d)
			}
		}
	}
	p.Tasks = rt.Tasks()
	return p, nil
}

// neighbour returns the block coordinates in direction d from (x,y) and
// whether they are inside the block grid.
func (p *Program) neighbour(x, y int, d comm.Frontier) (int, int, bool) {
	dd := frontierDirs[d]
	nx, ny := x+dd[0], y+dd[1]
	return nx, ny, nx >= 0 && nx < p.Opts.BX && ny >= 0 && ny < p.Opts.BY
}

// addMainTask creates the main operation of block (x,y): write handle on
// the block interior plus read handles on the frontier locations its
// neighbours export toward it.
func (p *Program) addMainTask(x, y int) {
	b := p.Part.Block(x, y)
	eb := float64(p.Opts.ElemBytes)
	task := p.RT.AddTask(fmt.Sprintf("b(%d,%d).main", x, y), nil)
	wB := task.NewHandleVol(p.BlockLoc[y][x], orwl.Write, float64(b.Cells())*eb, 1)

	// Read handles on the neighbours' frontiers pointing at this block,
	// in fixed direction order.
	type haloIn struct {
		d comm.Frontier
		h *orwl.Handle
		n int // strip length
	}
	var halos []haloIn
	for d := comm.OpN; d <= comm.OpSW; d++ {
		nx, ny, ok := p.neighbour(x, y, d)
		if !ok {
			continue
		}
		exp := opposite(d) // the neighbour's op that exports toward us
		loc := p.FrontierLoc[ny][nx][int(exp)-1]
		n := stripLen(p.Part.Block(nx, ny), exp)
		h := task.NewHandleVol(loc, orwl.Read, float64(n)*eb, 1)
		halos = append(halos, haloIn{d, h, n})
	}

	realMode := p.Opts.Grid != nil
	var scratch []float64
	haloBuf := map[comm.Frontier][]float64{}
	if realMode {
		scratch = make([]float64, b.Cells())
		for _, hi := range halos {
			haloBuf[hi.d] = make([]float64, hi.n)
		}
	}
	cells := float64(b.Cells())
	costs := p.Opts.Costs

	task.SetFunc(func(t *orwl.Task) error {
		for it := 0; it < p.Opts.Iters; it++ {
			last := it == p.Opts.Iters-1
			if err := wB.Acquire(); err != nil {
				return err
			}
			for _, hi := range halos {
				if err := hi.h.Acquire(); err != nil {
					return err
				}
				if realMode {
					src, err := hi.h.Float64s()
					if err != nil {
						return err
					}
					copy(haloBuf[hi.d], src)
				}
				if err := releaseOrNext(hi.h, last); err != nil {
					return err
				}
			}
			if realMode {
				za, err := wB.Float64s()
				if err != nil {
					return err
				}
				p.computeBlock(b, za, scratch, haloBuf)
				copy(za, scratch)
			}
			if proc := t.Proc(); proc != nil {
				proc.Compute(costs.FlopsPerCell * cells)
				proc.SweepWorkingSet(p.BlockLoc[y][x].Region(), int64(costs.BytesPerCell*cells))
			}
			if err := releaseOrNext(wB, last); err != nil {
				return err
			}
			// After the final release: EndIteration is an epoch barrier
			// point and must not be reached holding a grant.
			t.EndIteration()
		}
		return nil
	})
}

// addFrontierTask creates frontier op d of block (x,y): it reads the block
// interior and exports the d-side strip into its own location.
func (p *Program) addFrontierTask(x, y int, d comm.Frontier) {
	b := p.Part.Block(x, y)
	eb := float64(p.Opts.ElemBytes)
	n := stripLen(b, d)
	task := p.RT.AddTask(fmt.Sprintf("b(%d,%d).%v", x, y, d), nil)
	rB := task.NewHandleVol(p.BlockLoc[y][x], orwl.Read, float64(n)*eb, 0)
	wF := task.NewHandleVol(p.FrontierLoc[y][x][int(d)-1], orwl.Write, float64(n)*eb, 0)

	realMode := p.Opts.Grid != nil
	var strip []float64
	if realMode {
		strip = make([]float64, n)
	}

	task.SetFunc(func(t *orwl.Task) error {
		for it := 0; it < p.Opts.Iters; it++ {
			last := it == p.Opts.Iters-1
			if err := rB.Acquire(); err != nil {
				return err
			}
			if realMode {
				za, err := rB.Float64s()
				if err != nil {
					return err
				}
				extractStrip(b, za, d, strip)
			}
			if err := releaseOrNext(rB, last); err != nil {
				return err
			}
			if err := wF.Acquire(); err != nil {
				return err
			}
			if realMode {
				dst, err := wF.Float64s()
				if err != nil {
					return err
				}
				copy(dst, strip)
			}
			if proc := t.Proc(); proc != nil {
				proc.ComputeCycles(float64(n)) // strip copy
			}
			if err := releaseOrNext(wF, last); err != nil {
				return err
			}
			t.EndIteration()
		}
		return nil
	})
}

// extractStrip copies the d-side edge or corner of the block's za buffer
// (H×W row-major) into dst.
func extractStrip(b Block, za []float64, d comm.Frontier, dst []float64) {
	switch d {
	case comm.OpN:
		copy(dst, za[:b.W])
	case comm.OpS:
		copy(dst, za[(b.H-1)*b.W:])
	case comm.OpE:
		for r := 0; r < b.H; r++ {
			dst[r] = za[r*b.W+b.W-1]
		}
	case comm.OpW:
		for r := 0; r < b.H; r++ {
			dst[r] = za[r*b.W]
		}
	case comm.OpNE:
		dst[0] = za[b.W-1]
	case comm.OpNW:
		dst[0] = za[0]
	case comm.OpSE:
		dst[0] = za[b.H*b.W-1]
	case comm.OpSW:
		dst[0] = za[(b.H-1)*b.W]
	}
}

// computeBlock performs one Jacobi sweep of the block into scratch, using
// halo strips for the off-block neighbours. Global boundary cells are
// copied unchanged.
func (p *Program) computeBlock(b Block, za, scratch []float64, halo map[comm.Frontier][]float64) {
	cell := p.Opts.Cell
	for r := 0; r < b.H; r++ {
		gk := b.R0 + r
		for c := 0; c < b.W; c++ {
			gj := b.C0 + c
			i := r*b.W + c
			if gk == 0 || gk == p.rows-1 || gj == 0 || gj == p.cols-1 {
				scratch[i] = za[i]
				continue
			}
			var n, s, e, w float64
			if r > 0 {
				n = za[i-b.W]
			} else {
				n = halo[comm.OpN][c]
			}
			if r < b.H-1 {
				s = za[i+b.W]
			} else {
				s = halo[comm.OpS][c]
			}
			if c < b.W-1 {
				e = za[i+1]
			} else {
				e = halo[comm.OpE][r]
			}
			if c > 0 {
				w = za[i-1]
			} else {
				w = halo[comm.OpW][r]
			}
			scratch[i] = cell(za[i], n, s, e, w, gk, gj)
		}
	}
}

// releaseOrNext releases the handle after the final iteration and
// re-requests it (the iterative ORWL primitive) otherwise.
func releaseOrNext(h *orwl.Handle, last bool) error {
	if last {
		return h.Release()
	}
	return h.ReleaseAndRequest()
}

// Result assembles the final grid from the block payloads after RT.Run has
// returned. Only valid for real-mode programs.
func (p *Program) Result() (*Grid, error) {
	if p.Opts.Grid == nil {
		return nil, fmt.Errorf("kernels: Result on a cost-only program")
	}
	out := p.Opts.Grid.Clone()
	for y := 0; y < p.Opts.BY; y++ {
		for x := 0; x < p.Opts.BX; x++ {
			b := p.Part.Block(x, y)
			buf, ok := p.BlockLoc[y][x].PeekData().([]float64)
			if !ok {
				return nil, fmt.Errorf("kernels: block (%d,%d) payload missing", x, y)
			}
			for r := 0; r < b.H; r++ {
				copy(out.ZA[(b.R0+r)*p.cols+b.C0:(b.R0+r)*p.cols+b.C0+b.W], buf[r*b.W:(r+1)*b.W])
			}
		}
	}
	return out, nil
}

// MainTask returns the main task of block (x,y).
func (p *Program) MainTask(x, y int) *orwl.Task {
	return p.RT.Tasks()[comm.LK23OpIndex(p.Opts.BX, x, y, comm.OpMain)]
}

// CommMatrix returns the affinity matrix the runtime extracted from the
// program structure.
func (p *Program) CommMatrix() *comm.Matrix { return p.RT.CommMatrix() }
