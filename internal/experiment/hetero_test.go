package experiment

import (
	"strings"
	"testing"

	"repro/internal/orwl"
	"repro/internal/placement"
)

func TestHeteroPlatformShape(t *testing.T) {
	cfg := HeteroConfig{}
	platform, err := HeteroPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if platform.Nodes() != 8 || platform.Pods() != 2 || platform.Racks() != 4 {
		t.Fatalf("platform shape nodes=%d pods=%d racks=%d, want 8/2/4",
			platform.Nodes(), platform.Pods(), platform.Racks())
	}
	if !platform.Heterogeneous() {
		t.Fatal("platform is not heterogeneous")
	}
	if got := platform.Machine().Topology().NumCores(); got != 48 {
		t.Fatalf("fused platform has %d cores, want 48", got)
	}
	wantCores := []int{8, 4, 8, 4, 8, 4, 8, 4}
	for i, want := range wantCores {
		if got := platform.NodeCores(i); got != want {
			t.Errorf("node %d has %d cores, want %d", i, got, want)
		}
	}
	if levels := platform.Machine().NumFabricLevels(); levels != 3 {
		t.Fatalf("%d fabric levels, want 3 (NIC, rack uplink, pod uplink)", levels)
	}
	if !strings.Contains(HeteroPlatformSpec(cfg), "node:2{") {
		t.Errorf("platform spec %q lost the per-member braces", HeteroPlatformSpec(cfg))
	}
}

// TestAblationHetero asserts the A11 acceptance property: on the
// heterogeneous three-switch-level platform, capacity-aware depth-aware
// placement strictly beats the capacity-blind variant, which strictly beats
// the depth-blind one.
func TestAblationHetero(t *testing.T) {
	rows, err := AblationHetero(HeteroConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s reports non-positive time %f", r.Name, r.Seconds)
		}
		byName[r.Name] = r.Seconds
	}
	aware := byName["hetero/aware"]
	capBlind := byName["hetero/capacity-blind"]
	depthBlind := byName["hetero/depth-blind"]
	if !(aware < capBlind) {
		t.Errorf("aware (%.4fs) does not beat capacity-blind (%.4fs)", aware, capBlind)
	}
	if !(capBlind < depthBlind) {
		t.Errorf("capacity-blind (%.4fs) does not beat depth-blind (%.4fs)", capBlind, depthBlind)
	}
}

// TestHeteroAwarePlacement pins the structural properties behind the A11
// numbers: the capacity-weighted partition fills every node to exactly its
// core count (no oversubscription), and the class-constrained fabric
// matching co-locates every big/small pair under one top-of-rack switch.
func TestHeteroAwarePlacement(t *testing.T) {
	cfg := HeteroConfig{}.withDefaults()
	platform, err := HeteroPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mach := platform.Machine()
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Seed: 1})
	if err := buildHeteroStencil(rt, cfg); err != nil {
		t.Fatal(err)
	}
	m := rt.CommMatrix()
	a, err := placement.Hierarchical{}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualArity != 1 {
		t.Errorf("capacity-aware placement oversubscribes (virtual arity %d)", a.VirtualArity)
	}
	perNode := make([]int, platform.Nodes())
	nodeOfBlock := make([]int, len(heteroBlockSizes(cfg)))
	sizes := heteroBlockSizes(cfg)
	taskBlock := make([]int, m.Order())
	{
		i := 0
		for b, sz := range sizes {
			for s := 0; s < sz; s++ {
				taskBlock[i] = b
				i++
			}
		}
	}
	for task, pu := range a.TaskPU {
		node := mach.ClusterNodeOfPU(pu)
		perNode[node]++
		nodeOfBlock[taskBlock[task]] = node
	}
	for n, count := range perNode {
		if count != platform.NodeCores(n) {
			t.Errorf("node %d carries %d tasks for %d cores", n, count, platform.NodeCores(n))
		}
	}
	pair := heteroPairOf(sizes)
	for b, p := range pair {
		if b > p {
			continue
		}
		nb, np := nodeOfBlock[b], nodeOfBlock[p]
		if !mach.SameRack(nb, np) {
			t.Errorf("pair blocks %d/%d placed on nodes %d/%d in different racks", b, p, nb, np)
		}
	}
	// The depth-blind arm leaves every pair across a pod boundary.
	blind, err := placement.Hierarchical{NoFabricMatch: true}.Assign(mach, m)
	if err != nil {
		t.Fatal(err)
	}
	for task, pu := range blind.TaskPU {
		nodeOfBlock[taskBlock[task]] = mach.ClusterNodeOfPU(pu)
	}
	topo := mach.Topology()
	for b, p := range pair {
		if b > p {
			continue
		}
		na, np := topo.ClusterNodes()[nodeOfBlock[b]], topo.ClusterNodes()[nodeOfBlock[p]]
		if topo.SamePod(na, np) {
			t.Errorf("depth-blind pair blocks %d/%d unexpectedly share a pod", b, p)
		}
	}
}

func TestHeteroConfigValidate(t *testing.T) {
	for _, cfg := range []HeteroConfig{
		{Pods: 1},
		{Pods: 3},
		{BigCores: 4, SmallCores: 4},
		{BigCores: 6, CoresPerSocket: 4},
		{Iters: -1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if err := (HeteroConfig{}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestHeteroConfigFrom(t *testing.T) {
	cfg := HeteroConfigFrom(Config{Rows: 4096, Cols: 4096, Iters: 10, Cores: 48, Seed: 3})
	if cfg.Pods != 2 || cfg.RacksPerPod != 2 {
		t.Errorf("HeteroConfigFrom(48 cores) = %d pods x %d racks, want 2x2", cfg.Pods, cfg.RacksPerPod)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("derived config invalid: %v", err)
	}
}
