package sched

import (
	"strings"
	"testing"

	"repro/internal/numasim"
)

func schedMachine(t *testing.T, spec string) *numasim.Machine {
	t.Helper()
	plat, err := numasim.NewPlatform(spec, numasim.Config{})
	if err != nil {
		t.Fatalf("platform %q: %v", spec, err)
	}
	return plat.Machine()
}

func mustRun(t *testing.T, mach *numasim.Machine, opts Options, jobs []JobSpec) *Report {
	t.Helper()
	s, err := New(mach, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Run(jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestSchedulerPlacesSequentialJobs: two small jobs that fit side by side
// both start immediately; a third that needs the whole machine waits for
// both to finish.
func TestSchedulerPlacesSequentialJobs(t *testing.T) {
	mach := schedMachine(t, "rack:2 node:2 pack:1 core:4 pu:1")
	jobs := []JobSpec{
		{Name: "a", ArriveCycles: 0, WorkCycles: 1000, Tasks: 8, VolumeBytes: 64},
		{Name: "b", ArriveCycles: 0, WorkCycles: 1000, Tasks: 8, VolumeBytes: 64},
		{Name: "c", ArriveCycles: 10, WorkCycles: 1000, Tasks: 16, VolumeBytes: 64},
	}
	rep := mustRun(t, mach, Options{Policy: TopoAware}, jobs)
	if rep.Admitted != 3 || rep.Rejected != 0 {
		t.Fatalf("admitted %d rejected %d", rep.Admitted, rep.Rejected)
	}
	a, b, c := rep.Jobs[0], rep.Jobs[1], rep.Jobs[2]
	if a.WaitCycles != 0 || b.WaitCycles != 0 {
		t.Fatalf("small jobs waited: %v %v", a.WaitCycles, b.WaitCycles)
	}
	if c.WaitCycles <= 0 {
		t.Fatalf("full-machine job did not wait: %+v", c)
	}
	if c.StartCycles < a.FinishCycles || c.StartCycles < b.FinishCycles {
		t.Fatalf("c started at %v before both finished (%v, %v)", c.StartCycles, a.FinishCycles, b.FinishCycles)
	}
}

// TestSchedulerPreferredFallback is the required-tier-full fallback
// scenario: a job preferring one node cannot fit any single node (a resident
// job occupies part of every node of rack 0 is not needed — its size exceeds
// a node) and falls back to its required rack, landing entirely inside one
// rack across two nodes.
func TestSchedulerPreferredFallback(t *testing.T) {
	mach := schedMachine(t, "rack:2 node:2 pack:1 core:4 pu:1")
	jobs := []JobSpec{
		// 6 tasks > 4-core node: preferred=node is full everywhere, the
		// scheduler widens to the required rack tier.
		{Name: "wide", ArriveCycles: 0, WorkCycles: 1000, Tasks: 6, VolumeBytes: 64,
			Preferred: "node", Required: "rack"},
	}
	rep := mustRun(t, mach, Options{Policy: TopoAware}, jobs)
	j := rep.Jobs[0]
	if j.Rejected {
		t.Fatalf("fallback job rejected: %s", j.RejectReason)
	}
	if j.Tier != "rack" {
		t.Fatalf("job placed at tier %q, want rack fallback", j.Tier)
	}
	if j.NodesSpanned != 2 {
		t.Fatalf("job spans %d nodes, want 2", j.NodesSpanned)
	}
}

// TestSchedulerRequiredInfeasible: a job whose required tier can never hold
// it is rejected up front, with wait policy irrelevant.
func TestSchedulerRequiredInfeasible(t *testing.T) {
	mach := schedMachine(t, "rack:2 node:2 pack:1 core:4 pu:1")
	jobs := []JobSpec{
		{Name: "huge", ArriveCycles: 0, WorkCycles: 1000, Tasks: 12, VolumeBytes: 64, Required: "rack"},
	}
	rep := mustRun(t, mach, Options{Policy: TopoAware}, jobs)
	if !rep.Jobs[0].Rejected {
		t.Fatalf("infeasible job admitted: %+v", rep.Jobs[0])
	}
	if !strings.Contains(rep.Jobs[0].RejectReason, "capacity") {
		t.Fatalf("reject reason %q", rep.Jobs[0].RejectReason)
	}
}

// TestSchedulerQueueReject: under the reject policy a required-constrained
// job that finds its tier full is dropped instead of queued; under wait it
// runs after capacity frees.
func TestSchedulerQueueReject(t *testing.T) {
	mach := schedMachine(t, "rack:2 node:2 pack:1 core:4 pu:1")
	jobs := []JobSpec{
		{Name: "resident", ArriveCycles: 0, WorkCycles: 10000, Tasks: 16, VolumeBytes: 64},
		{Name: "late", ArriveCycles: 10, WorkCycles: 1000, Tasks: 4, VolumeBytes: 64, Required: "node"},
	}
	rej := mustRun(t, mach, Options{Policy: TopoAware, Queue: QueueReject}, jobs)
	if !rej.Jobs[1].Rejected {
		t.Fatalf("reject policy kept the job: %+v", rej.Jobs[1])
	}
	wait := mustRun(t, mach, Options{Policy: TopoAware, Queue: QueueWait}, jobs)
	if wait.Jobs[1].Rejected {
		t.Fatalf("wait policy rejected the job: %+v", wait.Jobs[1])
	}
	if wait.Jobs[1].WaitCycles <= 0 {
		t.Fatalf("late job should have waited, wait=%v", wait.Jobs[1].WaitCycles)
	}
}

// TestSchedulerFitRules: best-fit packs into the fuller rack, worst-fit
// spreads to the emptier one.
func TestSchedulerFitRules(t *testing.T) {
	mach := schedMachine(t, "rack:2 node:2 pack:1 core:4 pu:1")
	jobs := []JobSpec{
		// Occupy most of rack 0 (6 of 8 slots), then place a 2-task job.
		{Name: "resident", ArriveCycles: 0, WorkCycles: 100000, Tasks: 6, VolumeBytes: 64, Required: "rack"},
		{Name: "probe", ArriveCycles: 10, WorkCycles: 1000, Tasks: 2, VolumeBytes: 64, Preferred: "rack"},
	}
	best := mustRun(t, mach, Options{Policy: TopoAware, Fit: BestFit}, jobs)
	worst := mustRun(t, mach, Options{Policy: TopoAware, Fit: WorstFit}, jobs)
	if best.Jobs[1].Tier != "rack" || worst.Jobs[1].Tier != "rack" {
		t.Fatalf("probe tiers: best=%q worst=%q", best.Jobs[1].Tier, worst.Jobs[1].Tier)
	}
	if best.Jobs[1].Domain != 0 {
		t.Fatalf("best-fit probe went to rack %d, want the fuller rack 0", best.Jobs[1].Domain)
	}
	if worst.Jobs[1].Domain != 1 {
		t.Fatalf("worst-fit probe went to rack %d, want the emptier rack 1", worst.Jobs[1].Domain)
	}
}

// TestSchedulerFirstFitIgnoresConstraints: the baseline arm runs a job whose
// required tier the other arms would refuse (it does not understand
// constraints), scattering it across nodes.
func TestSchedulerFirstFitIgnoresConstraints(t *testing.T) {
	mach := schedMachine(t, "rack:2 node:2 pack:1 core:4 pu:1")
	jobs := []JobSpec{
		{Name: "wide", ArriveCycles: 0, WorkCycles: 1000, Tasks: 12, VolumeBytes: 64, Required: "rack"},
	}
	rep := mustRun(t, mach, Options{Policy: FirstFit}, jobs)
	if rep.Jobs[0].Rejected {
		t.Fatalf("first-fit rejected: %s", rep.Jobs[0].RejectReason)
	}
	if rep.Jobs[0].NodesSpanned < 3 {
		t.Fatalf("first-fit spans %d nodes, expected scatter", rep.Jobs[0].NodesSpanned)
	}
}

// TestSchedulerWorkloadRoundTrip: generate, render, reparse, rerun — the
// schedule is identical.
func TestSchedulerWorkloadRoundTrip(t *testing.T) {
	jobs, err := GenerateStream(StreamConfig{Jobs: 12, Seed: 3, Churn: 4,
		ConstraintFraction: 0.5, PreferredTier: "node", RequiredTier: "rack"})
	if err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	var lines []string
	for _, j := range jobs {
		lines = append(lines, j.Render())
	}
	parsed, err := ParseWorkload(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatalf("ParseWorkload: %v", err)
	}
	if len(parsed) != len(jobs) {
		t.Fatalf("parsed %d jobs, want %d", len(parsed), len(jobs))
	}
	for i := range jobs {
		if parsed[i] != jobs[i] {
			t.Fatalf("job %d round-trip mismatch:\n  %+v\n  %+v", i, jobs[i], parsed[i])
		}
	}
}
