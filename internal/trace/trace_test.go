package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/numasim"
	"repro/internal/orwl"
	"repro/internal/topology"
)

// tracedRun executes a two-task handoff program with a recorder attached.
func tracedRun(t *testing.T) (*Recorder, *numasim.Machine) {
	t.Helper()
	top, err := topology.FromSpec("pack:2 core:2 pu:1")
	if err != nil {
		t.Fatal(err)
	}
	mach, err := numasim.New(top, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	rt := orwl.NewRuntime(orwl.Options{Machine: mach, Trace: rec.Hook()})
	loc := rt.NewLocation("x", 1024)
	for i, name := range []string{"producer", "consumer"} {
		task := rt.AddTask(name, func(task *orwl.Task) error {
			h := task.Handle(0)
			for it := 0; it < 3; it++ {
				if err := h.Acquire(); err != nil {
					return err
				}
				task.Proc().ComputeCycles(100)
				var err error
				if it == 2 {
					err = h.Release()
				} else {
					err = h.ReleaseAndRequest()
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		task.NewHandle(loc, orwl.Write)
		if err := rt.Bind(task, i*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rec, mach
}

func TestRecorderCollects(t *testing.T) {
	rec, _ := tracedRun(t)
	// 2 tasks x 3 iterations x (acquire + release).
	if got := rec.Len(); got != 12 {
		t.Fatalf("events = %d, want 12", got)
	}
	evs := rec.Events()
	for i, e := range evs {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Op != "acquire" && e.Op != "release" {
			t.Errorf("bad op %q", e.Op)
		}
		if e.Location != "x" {
			t.Errorf("bad location %q", e.Location)
		}
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Errorf("Reset left %d events", rec.Len())
	}
}

func TestSummaries(t *testing.T) {
	rec, _ := tracedRun(t)
	sums := rec.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	// Sorted by name: consumer then producer.
	if sums[0].Task != "consumer" || sums[1].Task != "producer" {
		t.Errorf("order: %s, %s", sums[0].Task, sums[1].Task)
	}
	for _, s := range sums {
		if s.Acquires != 3 || s.Releases != 3 {
			t.Errorf("%s: %d/%d, want 3/3", s.Task, s.Acquires, s.Releases)
		}
		if s.LastClock <= s.FirstClock {
			t.Errorf("%s: clocks not increasing: %v..%v", s.Task, s.FirstClock, s.LastClock)
		}
	}
	out := FormatSummaries(sums)
	if !strings.Contains(out, "producer") || !strings.Contains(out, "acquires") {
		t.Errorf("FormatSummaries: %s", out)
	}
}

func TestCriticalSections(t *testing.T) {
	rec, _ := tracedRun(t)
	secs := rec.CriticalSections()
	if len(secs) != 6 {
		t.Fatalf("sections = %d, want 6", len(secs))
	}
	for i, cs := range secs {
		if cs.End < cs.Start {
			t.Errorf("section %d has negative span: %+v", i, cs)
		}
		if i > 0 && cs.Start < secs[i-1].Start {
			t.Errorf("sections not sorted at %d", i)
		}
	}
	// The lock is exclusive: held intervals must not overlap.
	for i := 1; i < len(secs); i++ {
		if secs[i].Start < secs[i-1].End {
			t.Errorf("overlap: %+v then %+v", secs[i-1], secs[i])
		}
	}
}

func TestUnmatchedAcquire(t *testing.T) {
	rec := NewRecorder()
	hook := rec.Hook()
	_ = hook // direct event injection below
	rec.mu.Lock()
	rec.events = []Event{
		{Task: "t", Location: "x", Op: "acquire", Clock: 5},
	}
	rec.mu.Unlock()
	secs := rec.CriticalSections()
	if len(secs) != 1 || secs[0].Start != 5 || secs[0].End != 5 {
		t.Errorf("unmatched acquire sections: %+v", secs)
	}
}

func TestChromeTraceJSON(t *testing.T) {
	rec, mach := tracedRun(t)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, mach.ClockHz()); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != 6 {
		t.Fatalf("trace slices = %d, want 6", len(parsed))
	}
	for _, ev := range parsed {
		if ev["ph"] != "X" || ev["name"] != "x" {
			t.Errorf("bad slice: %v", ev)
		}
		if ev["dur"].(float64) < 0 {
			t.Errorf("negative duration: %v", ev)
		}
	}
	// Zero clock frequency falls back without error.
	if err := rec.WriteChromeTrace(&bytes.Buffer{}, 0); err != nil {
		t.Errorf("zero-Hz trace: %v", err)
	}
}
