package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseDoc = `{
  "schema": "repro-bench/1",
  "seed": 7,
  "ablations": [
    {"exp": "scale", "id": "S1", "title": "S1", "rows": [
      {"name": "scale/stencil/10k-tasks/100-nodes", "seconds": 0, "cycles": 0, "wall_seconds": 1.0},
      {"name": "scale/random/10k-tasks/100-nodes", "seconds": 0, "cycles": 0, "wall_seconds": 2.0}
    ]},
    {"exp": "shift", "id": "A12", "title": "A12", "rows": [
      {"name": "phase/static", "seconds": 3.5, "cycles": 1e9}
    ]}
  ]
}`

func TestDiffPassesWithinFactor(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	cur := writeReport(t, dir, "cur.json", strings.NewReplacer(
		`"wall_seconds": 1.0`, `"wall_seconds": 1.9`,
		`"wall_seconds": 2.0`, `"wall_seconds": 0.5`,
	).Replace(baseDoc))
	var buf bytes.Buffer
	if err := diff(&buf, base, cur, 2); err != nil {
		t.Fatalf("within-factor run failed: %v\n%s", err, buf.String())
	}
	// Simulated rows (no wall_seconds) are not part of the gate.
	if strings.Contains(buf.String(), "phase/static") {
		t.Errorf("simulated row leaked into the wall-time table:\n%s", buf.String())
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	cur := writeReport(t, dir, "cur.json",
		strings.Replace(baseDoc, `"wall_seconds": 1.0`, `"wall_seconds": 2.5`, 1))
	var buf bytes.Buffer
	err := diff(&buf, base, cur, 2)
	if err == nil {
		t.Fatalf("2.5x regression passed a 2x gate:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "scale/scale/stencil/10k-tasks/100-nodes") {
		t.Errorf("error does not name the regressed row: %v", err)
	}
}

func TestDiffFailsOnMissingRow(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	cur := writeReport(t, dir, "cur.json",
		strings.Replace(baseDoc, `"wall_seconds": 2.0`, `"wall_seconds": 0`, 1))
	var buf bytes.Buffer
	err := diff(&buf, base, cur, 2)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("dropped row not reported: %v\n%s", err, buf.String())
	}
}

func TestDiffRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseDoc)
	wrongSchema := writeReport(t, dir, "schema.json",
		strings.Replace(baseDoc, "repro-bench/1", "repro-bench/999", 1))
	noWalls := writeReport(t, dir, "nowalls.json", `{
  "schema": "repro-bench/1",
  "ablations": [{"exp": "shift", "rows": [{"name": "phase/static", "seconds": 3.5}]}]
}`)
	var buf bytes.Buffer
	if err := diff(&buf, base, wrongSchema, 2); err == nil {
		t.Error("mismatched schema accepted")
	}
	if err := diff(&buf, noWalls, base, 2); err == nil {
		t.Error("baseline without wall rows accepted")
	}
	if err := diff(&buf, base, base, 0); err == nil {
		t.Error("non-positive factor accepted")
	}
	if err := diff(&buf, filepath.Join(dir, "absent.json"), base, 2); err == nil {
		t.Error("missing baseline file accepted")
	}
}
