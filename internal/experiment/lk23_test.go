package experiment

import (
	"strings"
	"testing"
)

// smallCfg keeps unit-test runs fast: a reduced matrix and iteration count
// preserve every ratio in the model (costs are linear in both).
func smallCfg() Config {
	return Config{Rows: 4096, Cols: 4096, Iters: 10, Seed: 42}
}

func TestBlockGrid(t *testing.T) {
	cases := []struct{ n, bx, by int }{
		{192, 16, 12},
		{8, 4, 2},
		{16, 4, 4},
		{48, 8, 6},
		{1, 1, 1},
		{7, 7, 1},
		{144, 12, 12},
	}
	for _, tc := range cases {
		bx, by := BlockGrid(tc.n)
		if bx != tc.bx || by != tc.by {
			t.Errorf("BlockGrid(%d) = %dx%d, want %dx%d", tc.n, bx, by, tc.bx, tc.by)
		}
		if bx*by != tc.n {
			t.Errorf("BlockGrid(%d) does not factor", tc.n)
		}
	}
}

func TestMachineShapes(t *testing.T) {
	m, err := Machine(Config{Cores: 16, CoresPerSocket: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Topology().NumCores() != 16 || m.Topology().NumNUMANodes() != 2 {
		t.Errorf("16-core machine: %v", m.Topology())
	}
	// Fewer cores than a socket: one small socket.
	m, err = Machine(Config{Cores: 4, CoresPerSocket: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Topology().NumCores() != 4 || m.Topology().NumNUMANodes() != 1 {
		t.Errorf("4-core machine: %v", m.Topology())
	}
	// Indivisible core counts are rejected.
	if _, err := Machine(Config{Cores: 12, CoresPerSocket: 8}); err == nil {
		t.Errorf("12 cores on 8-core sockets accepted")
	}
	// SMT doubles the PUs.
	m, err = Machine(Config{Cores: 8, CoresPerSocket: 8, SMT: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Topology().NumPUs() != 16 {
		t.Errorf("SMT machine PUs = %d", m.Topology().NumPUs())
	}
}

func TestRunUnknownImpl(t *testing.T) {
	if _, err := Run(Impl("bogus"), smallCfg()); err == nil {
		t.Errorf("unknown implementation accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallCfg()
	cfg.Cores = 16
	for _, impl := range []Impl{ORWLBind, ORWLNoBind, OpenMP} {
		a, err := Run(impl, cfg)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		b, err := Run(impl, cfg)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if a.Seconds != b.Seconds {
			t.Errorf("%s not deterministic: %v vs %v", impl, a.Seconds, b.Seconds)
		}
		if a.Seconds <= 0 {
			t.Errorf("%s: no simulated time", impl)
		}
	}
}

func TestRunMetadata(t *testing.T) {
	cfg := smallCfg()
	cfg.Cores = 16
	res, err := Run(ORWLBind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "treematch" || res.Blocks != 16 || res.Tasks != 144 {
		t.Errorf("metadata: %+v", res)
	}
	if res.Migrations != 0 {
		t.Errorf("bound run migrated %d times", res.Migrations)
	}
	nb, err := Run(ORWLNoBind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Migrations == 0 {
		t.Errorf("unbound run never migrated")
	}
	if !strings.Contains(res.String(), "orwl-bind") {
		t.Errorf("String() = %q", res.String())
	}
}

// TestFigure1Shape is the reproduction's headline assertion: the relations
// the paper reports for Figure 1 must hold for the simulated times.
func TestFigure1Shape(t *testing.T) {
	cfg := smallCfg()
	points := []int{8, 32, 96, 192}
	rows, err := Figure1(points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(points) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// ORWL Bind is never slower than the alternatives (small tolerance
		// for the one-socket tie).
		if r.Bind > r.NoBind*1.02 {
			t.Errorf("%d cores: bind %v slower than nobind %v", r.Cores, r.Bind, r.NoBind)
		}
		if r.Bind > r.OMP*1.02 {
			t.Errorf("%d cores: bind %v slower than openmp %v", r.Cores, r.Bind, r.OMP)
		}
	}
	// At one socket the three implementations are close (within 15%).
	first := rows[0]
	if first.NoBind > first.Bind*1.15 || first.OMP > first.Bind*1.15 {
		t.Errorf("one-socket times not close: %+v", first)
	}
	// Bind scales: monotone decreasing over the sweep, and by at least 10x
	// from 8 to 192 cores.
	for i := 1; i < len(rows); i++ {
		if rows[i].Bind >= rows[i-1].Bind {
			t.Errorf("bind not monotone: %v then %v", rows[i-1].Bind, rows[i].Bind)
		}
	}
	if rows[len(rows)-1].Bind > rows[0].Bind/10 {
		t.Errorf("bind scaled only %vx", rows[0].Bind/rows[len(rows)-1].Bind)
	}
	// The paper's speedups at 192 cores: ~2.8x vs NoBind, ~5x vs OpenMP.
	last := rows[len(rows)-1]
	if got := last.NoBind / last.Bind; got < 2.0 || got > 4.0 {
		t.Errorf("nobind/bind at 192 = %v, want ~2.8", got)
	}
	if got := last.OMP / last.Bind; got < 3.5 || got > 7.0 {
		t.Errorf("omp/bind at 192 = %v, want ~5", got)
	}
	// OpenMP plateaus: scaling from 32 to 192 cores (6x more cores) gains
	// less than 2.5x.
	var at32, at192 float64
	for _, r := range rows {
		if r.Cores == 32 {
			at32 = r.OMP
		}
		if r.Cores == 192 {
			at192 = r.OMP
		}
	}
	if gain := at32 / at192; gain > 2.5 {
		t.Errorf("openmp gained %vx from 32 to 192 cores; expected a plateau", gain)
	}
	// The table renderer mentions every core count.
	out := FormatFigure1(rows)
	for _, want := range []string{"cores", "orwl-bind", "192", "8"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFigure1 missing %q:\n%s", want, out)
		}
	}
}

func TestFullScaleAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full 16384x16384, 100-iteration run")
	}
	// The paper's anchors at full scale: ORWL Bind finishes in ~11
	// simulated seconds (paper: "a minimum processing time of about 11
	// seconds"); we accept 8-15.
	res, err := Run(ORWLBind, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds < 8 || res.Seconds > 15 {
		t.Errorf("full-scale bind = %vs, paper anchor ~11s", res.Seconds)
	}
}

func TestSafeRatio(t *testing.T) {
	if safeRatio(4, 2) != 2 || safeRatio(1, 0) != 0 {
		t.Errorf("safeRatio misbehaves")
	}
}
