package orwl

import (
	"strings"
	"testing"
)

func TestHandleLifecycleErrors(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	task := rt.AddTask("t", nil)
	h := task.NewHandle(loc, Write)

	// Acquire before Request.
	if err := h.Acquire(); err == nil {
		t.Errorf("Acquire without Request succeeded")
	}
	// Release before Acquire.
	if err := h.Release(); err == nil {
		t.Errorf("Release without Acquire succeeded")
	}
	if err := h.Request(); err != nil {
		t.Fatal(err)
	}
	// Double request.
	if err := h.Request(); err == nil {
		t.Errorf("double Request succeeded")
	}
	// Release while only Requested.
	if err := h.Release(); err == nil {
		t.Errorf("Release in Requested state succeeded")
	}
	if err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	// Double acquire.
	if err := h.Acquire(); err == nil {
		t.Errorf("double Acquire succeeded")
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	// Double release.
	if err := h.Release(); err == nil {
		t.Errorf("double Release succeeded")
	}
}

func TestDataOutsideCriticalSection(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	loc.SetData([]float64{1})
	h := rt.AddTask("t", nil).NewHandle(loc, Read)
	if _, err := h.Data(); err == nil {
		t.Errorf("Data before acquire succeeded")
	}
	if err := h.AcquireRequest(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Data(); err != nil {
		t.Errorf("Data while acquired failed: %v", err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Data(); err == nil {
		t.Errorf("Data after release succeeded")
	}
}

func TestFloat64sTypeMismatch(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	loc.SetData("not floats")
	h := rt.AddTask("t", nil).NewHandle(loc, Read)
	if err := h.AcquireRequest(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Float64s(); err == nil || !strings.Contains(err.Error(), "not []float64") {
		t.Errorf("type mismatch not reported: %v", err)
	}
	// Nil payload is returned as nil without error.
	loc.SetData(nil)
	d, err := h.Float64s()
	if err != nil || d != nil {
		t.Errorf("nil payload: %v, %v", d, err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleAccessors(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 128)
	task := rt.AddTask("t", nil)
	h := task.NewHandleVol(loc, Read, 32, 2)
	if h.Location() != loc || h.Mode() != Read || h.Volume() != 32 {
		t.Errorf("accessors wrong: %v %v %v", h.Location(), h.Mode(), h.Volume())
	}
	if h.State() != Idle {
		t.Errorf("fresh state = %v", h.State())
	}
	hd := task.NewHandle(loc, Write)
	if hd.Volume() != 128 {
		t.Errorf("default volume = %v, want location size", hd.Volume())
	}
}

func TestAcquireRequestComposition(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	h := rt.AddTask("t", nil).NewHandle(loc, Write)
	if err := h.AcquireRequest(); err != nil {
		t.Fatal(err)
	}
	if h.State() != Acquired {
		t.Errorf("state = %v", h.State())
	}
	if err := h.AcquireRequest(); err == nil {
		t.Errorf("AcquireRequest while acquired succeeded")
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestTryAcquire(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	a := rt.AddTask("a", nil).NewHandle(loc, Write)
	b := rt.AddTask("b", nil).NewHandle(loc, Write)

	// Before Request: error.
	if _, err := a.TryAcquire(); err == nil {
		t.Errorf("TryAcquire without Request succeeded")
	}
	if err := a.Request(); err != nil {
		t.Fatal(err)
	}
	if err := b.Request(); err != nil {
		t.Fatal(err)
	}
	// a is at the head: granted.
	ok, err := a.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("head TryAcquire = %v, %v", ok, err)
	}
	if a.State() != Acquired {
		t.Errorf("state = %v", a.State())
	}
	// While acquired: error.
	if _, err := a.TryAcquire(); err == nil {
		t.Errorf("TryAcquire while acquired succeeded")
	}
	// b is behind a: not granted, no error, still requested.
	ok, err = b.TryAcquire()
	if err != nil || ok {
		t.Fatalf("queued TryAcquire = %v, %v", ok, err)
	}
	if b.State() != Requested {
		t.Errorf("b state = %v", b.State())
	}
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	// Now b succeeds.
	ok, err = b.TryAcquire()
	if err != nil || !ok {
		t.Fatalf("TryAcquire after release = %v, %v", ok, err)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRequest(t *testing.T) {
	rt := buildRuntime()
	loc := rt.NewLocation("x", 8)
	a := rt.AddTask("a", nil).NewHandle(loc, Write)
	b := rt.AddTask("b", nil).NewHandle(loc, Write)
	if err := a.Request(); err != nil {
		t.Fatal(err)
	}
	if err := b.Request(); err != nil {
		t.Fatal(err)
	}
	// Cancelling the head grants the next in line.
	if err := a.cancelRequest(); err != nil {
		t.Fatal(err)
	}
	if a.State() != Idle {
		t.Errorf("state after cancel = %v", a.State())
	}
	if err := b.Acquire(); err != nil {
		t.Fatalf("b not granted after cancel: %v", err)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	// Cancelling an idle handle is a no-op.
	if err := a.cancelRequest(); err != nil {
		t.Errorf("idle cancel errored: %v", err)
	}
}
