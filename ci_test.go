// CI-style repository guards: a go vet pass over every package, and a
// deprecation guard that keeps migrated call sites from regressing onto the
// legacy cluster-construction and fabric-stream entry points.
package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGoVet runs `go vet ./...` over the repository, the static-analysis
// step of the CI pipeline.
func TestGoVet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go vet in -short mode")
	}
	cmd := exec.Command("go", "vet", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./... failed:\n%s", out)
	}
}

// deprecatedCallRe matches call sites of the legacy cluster/fabric API: the
// spec-driven Platform surface (NewPlatform, SetLinkStreams) replaced them,
// and the old names survive only as thin wrappers for compatibility.
var deprecatedCallRe = regexp.MustCompile(`\b(NewCluster|ClusterFromSpec|SetFabricStreams|SetFabricLinkStreams)\(`)

// wrapperFiles hold the deprecated wrappers themselves; everything else is
// expected to use the replacement API.
var wrapperFiles = map[string]bool{
	filepath.Join("internal", "numasim", "cluster.go"): true,
	filepath.Join("internal", "numasim", "machine.go"): true,
}

// TestDeprecatedFabricAPIHasNoCallers greps every non-test, non-wrapper Go
// file for direct calls to the deprecated entry points, so migrated call
// sites cannot silently regress. Tests may keep calling the wrappers — that
// is how their equivalence with the new surface stays pinned.
func TestDeprecatedFabricAPIHasNoCallers(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") || wrapperFiles[path] {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			code := line
			if idx := strings.Index(code, "//"); idx >= 0 {
				code = code[:idx]
			}
			if m := deprecatedCallRe.FindString(code); m != "" {
				t.Errorf("%s:%d calls deprecated %s — use the Platform API (NewPlatform / SetLinkStreams)",
					path, i+1, strings.TrimSuffix(m, "("))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
