package orwl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/numasim"
)

// Options configures a Runtime. The zero value runs tasks as plain
// goroutines with no virtual-time accounting.
type Options struct {
	// Machine attaches a simulated NUMA machine: tasks get virtual clocks,
	// lock handoffs and memory accesses are priced, and MakespanSeconds
	// reports the simulated execution time.
	Machine *numasim.Machine
	// MigrationProbability is the chance that the simulated OS migrates an
	// unbound task at each EndIteration. Defaults to 0.25.
	MigrationProbability float64
	// Seed drives the simulated OS scheduler for unbound tasks.
	Seed int64
	// ControlEventCycles is the base cost of one lock transition handled by
	// a task's control thread (scaled by the control thread's distance; see
	// Task.chargeControlEvent). Defaults to 10000 cycles (~4.4 µs at
	// 2.27 GHz): an on-core wakeup of the control thread through a shared
	// cache line. The unmapped 6× case then models a ~26 µs OS wakeup.
	ControlEventCycles float64
	// Trace, when non-nil, receives one event per acquire/release.
	Trace func(TraceEvent)
}

// TraceEvent describes one lock transition for tracing/visualization.
type TraceEvent struct {
	Task     *Task
	Location *Location
	// Op is "acquire" or "release".
	Op string
	// Clock is the task's virtual time in cycles (0 without a machine).
	Clock float64
}

type runtimeState int

const (
	stateBuilding runtimeState = iota
	stateRunning
	stateDone
)

// Runtime owns the locations and tasks of one ORWL program and runs them
// with the two-phase protocol: first every task's initial lock requests are
// inserted in a canonical deterministic order, then all tasks start. The
// canonical order plus the ReleaseAndRequest discipline make the iterative
// system deadlock-free (Clauss & Gustedt 2010).
type Runtime struct {
	opts Options
	mach *numasim.Machine

	mu        sync.Mutex
	state     runtimeState
	locations []*Location
	tasks     []*Task

	// measured accumulates the observed communication volumes between task
	// pairs: every grant whose data was last released by another task
	// records the handle volume against the (producer, consumer) pair.
	measuredMu sync.Mutex
	measured   map[[2]int]float64
	// window accumulates the same observations over a bounded horizon; it
	// is rolled at every epoch boundary so adaptive re-placement reacts to
	// recent traffic rather than the run-to-date sum. Created by Run.
	window *comm.Window

	// epochs, when non-nil, holds the barrier state of ConfigureEpochs.
	epochs *epochState

	wallTime time.Duration
}

// NewRuntime creates an empty runtime.
func NewRuntime(opts Options) *Runtime {
	if opts.MigrationProbability == 0 {
		opts.MigrationProbability = 0.25
	}
	if opts.ControlEventCycles == 0 {
		opts.ControlEventCycles = 10_000
	}
	return &Runtime{opts: opts, mach: opts.Machine}
}

// Machine returns the attached simulated machine, or nil.
func (rt *Runtime) Machine() *numasim.Machine { return rt.mach }

// NewLocation creates a location whose backing memory follows the
// first-touch policy: it ends up on the NUMA node of the first task that
// accesses it, exactly like the C library's location buffers.
func (rt *Runtime) NewLocation(name string, sizeBytes int64) *Location {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.state != stateBuilding {
		panic("orwl: NewLocation after the runtime started")
	}
	l := &Location{rt: rt, id: len(rt.locations), name: name, size: sizeBytes, frontierPU: -1, frontierTask: -1}
	if rt.mach != nil {
		l.region = rt.mach.AllocFirstTouch(name, sizeBytes)
	}
	rt.locations = append(rt.locations, l)
	return l
}

// NewLocationOn creates a location with an explicit home NUMA node.
func (rt *Runtime) NewLocationOn(name string, sizeBytes int64, node int) (*Location, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.state != stateBuilding {
		return nil, fmt.Errorf("orwl: NewLocationOn after the runtime started")
	}
	l := &Location{rt: rt, id: len(rt.locations), name: name, size: sizeBytes, frontierPU: -1, frontierTask: -1}
	if rt.mach != nil {
		r, err := rt.mach.AllocOn(name, sizeBytes, node)
		if err != nil {
			return nil, err
		}
		l.region = r
	}
	rt.locations = append(rt.locations, l)
	return l, nil
}

// AddTask registers a task. Tasks are identified and canonically ordered by
// their creation index.
func (rt *Runtime) AddTask(name string, fn TaskFunc) *Task {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.state != stateBuilding {
		panic("orwl: AddTask after the runtime started")
	}
	t := &Task{rt: rt, id: len(rt.tasks), name: name, fn: fn, pu: -1, ctlPU: -1}
	rt.tasks = append(rt.tasks, t)
	return t
}

// Tasks returns the registered tasks in creation order.
func (rt *Runtime) Tasks() []*Task {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*Task(nil), rt.tasks...)
}

// Locations returns the registered locations in creation order.
func (rt *Runtime) Locations() []*Location {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*Location(nil), rt.locations...)
}

// Bind pins a task's computation thread to a PU (the effect of the paper's
// placement module). Must be called before Run; pass -1 to leave the task
// to the simulated OS scheduler (the NoBind configuration).
func (rt *Runtime) Bind(t *Task, pu int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.state != stateBuilding {
		return fmt.Errorf("orwl: Bind after the runtime started")
	}
	if rt.mach != nil && pu >= rt.mach.Topology().NumPUs() {
		return fmt.Errorf("orwl: PU %d out of range", pu)
	}
	t.pu = pu
	return nil
}

// BindControl pins a task's control thread to a PU; -1 leaves it to the OS.
func (rt *Runtime) BindControl(t *Task, pu int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.state != stateBuilding {
		return fmt.Errorf("orwl: BindControl after the runtime started")
	}
	if rt.mach != nil && pu >= rt.mach.Topology().NumPUs() {
		return fmt.Errorf("orwl: PU %d out of range", pu)
	}
	t.ctlPU = pu
	return nil
}

// Run executes the program: phase 1 inserts every handle's initial request
// in canonical (rank, task ID, handle index) order; phase 2 starts one
// goroutine per task and waits for all of them. It returns the joined
// errors of all failing tasks, or an error if any handle is still held or
// queued when its task returns.
func (rt *Runtime) Run() error {
	rt.mu.Lock()
	if rt.state != stateBuilding {
		rt.mu.Unlock()
		return fmt.Errorf("orwl: Run called twice")
	}
	rt.state = stateRunning
	tasks := append([]*Task(nil), rt.tasks...)
	rt.window = comm.NewWindow(len(tasks))
	if rt.epochs != nil {
		rt.epochs.active = len(tasks)
	}
	rt.mu.Unlock()

	// Create the execution contexts now that bindings are final.
	if rt.mach != nil {
		for _, t := range tasks {
			if t.pu >= 0 {
				p, err := rt.mach.NewProc(t.name, t.pu)
				if err != nil {
					return err
				}
				t.proc = p
			} else {
				t.proc = rt.mach.NewUnboundProc(t.name, rt.opts.Seed+int64(t.id)*7919)
			}
		}
	}

	// Resolve every location's memory home deterministically: on the node
	// of its first writer in canonical task order (falling back to the
	// first reader). This mirrors a topology-aware runtime allocating each
	// location's buffer local to the task that produces its data, and it
	// removes the first-touch race that a read-shared first grant (several
	// readers woken together) would otherwise introduce into the virtual
	// times.
	if rt.mach != nil {
		rt.homeLocations(tasks)
	}

	// Phase 1: canonical initial request insertion. This is the "global
	// initialization following a canonical order" that guarantees liveness:
	// every location's FIFO starts in the same relative order on every run.
	var initial []*Handle
	for _, t := range tasks {
		initial = append(initial, t.handles...)
	}
	sort.SliceStable(initial, func(a, b int) bool {
		ha, hb := initial[a], initial[b]
		if ha.rank != hb.rank {
			return ha.rank < hb.rank
		}
		if ha.task.id != hb.task.id {
			return ha.task.id < hb.task.id
		}
		return ha.idx < hb.idx
	})
	for _, h := range initial {
		if err := h.Request(); err != nil {
			return fmt.Errorf("orwl: canonical init: %w", err)
		}
	}

	// Phase 2: run all tasks.
	start := time.Now()
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t *Task) {
			defer wg.Done()
			defer rt.epochTaskDone()
			if t.fn != nil {
				errs[i] = t.fn(t)
			}
		}(i, t)
	}
	wg.Wait()

	rt.mu.Lock()
	rt.wallTime = time.Since(start)
	rt.state = stateDone
	rt.mu.Unlock()

	var all []error
	for i, err := range errs {
		if err != nil {
			all = append(all, fmt.Errorf("%s: %w", tasks[i], err))
		}
	}
	// A clean shutdown leaves every handle idle; held or queued handles
	// indicate a protocol bug in the application.
	if len(all) == 0 {
		for _, t := range tasks {
			for _, h := range t.handles {
				if st := h.State(); st == Acquired {
					all = append(all, fmt.Errorf("%s: handle on %q still acquired at exit", t, h.loc.name))
				} else if st == Requested {
					// Drain the leftover request so the queue is clean.
					if err := h.cancelRequest(); err != nil {
						all = append(all, err)
					}
				}
			}
		}
	}
	return errors.Join(all...)
}

// homeLocations moves every still-unhomed location region onto the NUMA
// node of its first writer task (first reader when no task writes it).
func (rt *Runtime) homeLocations(tasks []*Task) {
	owner := make(map[*Location]*Task)
	reader := make(map[*Location]*Task)
	for _, t := range tasks {
		for _, h := range t.handles {
			if h.mode == Write {
				if _, ok := owner[h.loc]; !ok {
					owner[h.loc] = t
				}
			} else if _, ok := reader[h.loc]; !ok {
				reader[h.loc] = t
			}
		}
	}
	rt.mu.Lock()
	locations := append([]*Location(nil), rt.locations...)
	rt.mu.Unlock()
	for _, l := range locations {
		if l.region == nil || l.region.Home() >= 0 {
			continue
		}
		t := owner[l]
		if t == nil {
			t = reader[l]
		}
		if t == nil || t.proc == nil {
			continue
		}
		// MoveTo cannot fail here: NodeOfPU always returns a valid node.
		_ = l.region.MoveTo(rt.mach.NodeOfPU(t.proc.PU()))
	}
}

// cancelRequest withdraws a queued-but-never-acquired request, used to
// clean up after the final ReleaseAndRequest of an iterative task.
func (h *Handle) cancelRequest() error {
	h.mu.Lock()
	req := h.req
	h.mu.Unlock()
	if req == nil {
		return nil
	}
	l := h.loc
	l.mu.Lock()
	for i, q := range l.queue {
		if q == req {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	l.grantLocked()
	l.mu.Unlock()
	h.mu.Lock()
	h.req = nil
	h.state = Idle
	h.mu.Unlock()
	return nil
}

// WallTime returns the real time phase 2 took (not the simulated time).
func (rt *Runtime) WallTime() time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.wallTime
}

// MakespanCycles returns the maximum virtual clock over all tasks, i.e. the
// simulated parallel execution time in cycles (0 without a machine).
func (rt *Runtime) MakespanCycles() float64 {
	rt.mu.Lock()
	tasks := append([]*Task(nil), rt.tasks...)
	rt.mu.Unlock()
	var procs []*numasim.Proc
	for _, t := range tasks {
		if t.proc != nil {
			procs = append(procs, t.proc)
		}
	}
	return numasim.Makespan(procs)
}

// MakespanSeconds returns the simulated execution time in seconds.
func (rt *Runtime) MakespanSeconds() float64 {
	if rt.mach == nil {
		return 0
	}
	return rt.mach.CyclesToSeconds(rt.MakespanCycles())
}

// CommMatrix extracts the task-to-task affinity matrix from the program
// structure, the paper's "application information gathered from the ORWL
// runtime": two tasks communicate through a location when one writes it and
// the other reads it (or both write it), and the volume attributed to the
// pair is the smaller of the two declared handle volumes.
func (rt *Runtime) CommMatrix() *comm.Matrix {
	rt.mu.Lock()
	tasks := append([]*Task(nil), rt.tasks...)
	locations := append([]*Location(nil), rt.locations...)
	rt.mu.Unlock()

	m := comm.New(len(tasks))
	for _, t := range tasks {
		m.SetLabel(t.id, t.name)
	}
	type endpoint struct {
		task int
		mode Mode
		vol  float64
	}
	byLoc := make(map[*Location][]endpoint, len(locations))
	for _, t := range tasks {
		for _, h := range t.handles {
			byLoc[h.loc] = append(byLoc[h.loc], endpoint{t.id, h.mode, h.vol})
		}
	}
	for _, eps := range byLoc {
		for i := 0; i < len(eps); i++ {
			for j := i + 1; j < len(eps); j++ {
				a, b := eps[i], eps[j]
				if a.task == b.task {
					continue
				}
				// Two readers never exchange data with each other; every
				// other combination moves data through the location.
				if a.mode == Read && b.mode == Read {
					continue
				}
				vol := a.vol
				if b.vol < vol {
					vol = b.vol
				}
				m.AddSym(a.task, b.task, vol)
			}
		}
	}
	return m
}

// recordComm accumulates one observed handoff of vol bytes from task `from`
// to task `to`.
func (rt *Runtime) recordComm(from, to int, vol float64) {
	rt.measuredMu.Lock()
	if rt.measured == nil {
		rt.measured = make(map[[2]int]float64)
	}
	rt.measured[[2]int{from, to}] += vol
	window := rt.window
	rt.measuredMu.Unlock()
	if window != nil {
		window.AddSym(from, to, vol)
	}
}

// MeasuredCommMatrix returns the communication matrix actually observed
// during the run: for every lock grant whose protected data was last
// released by a different task, the handle's volume is attributed to that
// (producer, consumer) pair, symmetrically. Where CommMatrix predicts the
// affinity statically from the program structure (the input to the
// placement module), the measured matrix validates the prediction — for an
// iterative program running N steady-state iterations the measured matrix
// converges to N times the per-iteration structural one.
func (rt *Runtime) MeasuredCommMatrix() *comm.Matrix {
	rt.mu.Lock()
	n := len(rt.tasks)
	rt.mu.Unlock()
	m := comm.New(n)
	rt.measuredMu.Lock()
	for pair, vol := range rt.measured {
		m.AddSym(pair[0], pair[1], vol)
	}
	rt.measuredMu.Unlock()
	return m
}

// MeasuredWindow returns a snapshot of the windowed measured communication
// matrix: the observations accumulated since the last epoch boundary (plus
// whatever earlier epochs' decayed residue the ConfigureEpochs factor
// keeps). Before Run it returns an empty matrix.
func (rt *Runtime) MeasuredWindow() *comm.Matrix {
	rt.mu.Lock()
	w, n := rt.window, len(rt.tasks)
	rt.mu.Unlock()
	if w == nil {
		return comm.New(n)
	}
	return w.Snapshot()
}

// trace dispatches a trace event when a hook is installed.
func (rt *Runtime) trace(t *Task, op string, l *Location) {
	if rt.opts.Trace == nil {
		return
	}
	var clock float64
	if t.proc != nil {
		clock = t.proc.Clock()
	}
	rt.opts.Trace(TraceEvent{Task: t, Location: l, Op: op, Clock: clock})
}
