package experiment

import (
	"strings"
	"testing"
)

// TestAblationSchedOrdering is the A15 acceptance property: on every cell of
// the default shape × seed grid (a 2-tier and a 3-tier domain ladder, two
// stream seeds each), the topology-aware scheduler strictly beats the
// topo-blind one on aggregate job cycle time, and topo-blind strictly beats
// constraint-ignoring first-fit.
func TestAblationSchedOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell scheduler grid in -short mode")
	}
	cfg := SchedConfig{}.withDefaults()
	if len(cfg.Shapes) < 2 || len(cfg.Seeds) < 2 {
		t.Fatalf("default grid %dx%d, want at least 2 shapes x 2 seeds", len(cfg.Shapes), len(cfg.Seeds))
	}
	for _, shape := range cfg.Shapes {
		for _, seed := range cfg.Seeds {
			agg := map[string]float64{}
			for _, mode := range SchedModes() {
				rep, err := RunSchedCell(mode, shape, seed, cfg)
				if err != nil {
					t.Fatalf("%s shape %q seed %d: %v", mode, shape, seed, err)
				}
				if rep.Admitted == 0 {
					t.Fatalf("%s shape %q seed %d: no jobs admitted", mode, shape, seed)
				}
				agg[mode] = rep.AggregateCycles
			}
			if !(agg["topo-aware"] < agg["topo-blind"]) {
				t.Errorf("shape %q seed %d: topo-aware %.0f not strictly below topo-blind %.0f",
					shape, seed, agg["topo-aware"], agg["topo-blind"])
			}
			if !(agg["topo-blind"] < agg["first-fit"]) {
				t.Errorf("shape %q seed %d: topo-blind %.0f not strictly below first-fit %.0f",
					shape, seed, agg["topo-blind"], agg["first-fit"])
			}
		}
	}
}

// TestAblationSchedRows: the ablation rows carry the registered orderings,
// positive times, the grid size in the detail, and the aware arm leaves the
// free capacity less fragmented than constraint-ignoring first-fit (the
// packed-vs-fragmented utilization claim).
func TestAblationSchedRows(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell scheduler grid in -short mode")
	}
	rows, err := AblationSched(SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SchedModes()) {
		t.Fatalf("%d rows, want %d", len(rows), len(SchedModes()))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s has non-positive aggregate time %v", r.Name, r.Seconds)
		}
		if !strings.Contains(r.Detail, "cells=4") {
			t.Errorf("%s detail %q does not report the 2x2 grid", r.Name, r.Detail)
		}
		if !strings.Contains(r.Detail, "frag=") || !strings.Contains(r.Detail, "util=") {
			t.Errorf("%s detail %q misses the utilization metrics", r.Name, r.Detail)
		}
	}
	if err := CheckOrderings(rows, AblationOrderings("sched")); err != nil {
		t.Errorf("registered sched orderings violated: %v", err)
	}
	aware, err := RunSched("topo-aware", SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunSched("first-fit", SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !(aware.FragmentationAvg < first.FragmentationAvg) {
		t.Errorf("topo-aware frag %.3f not below first-fit %.3f",
			aware.FragmentationAvg, first.FragmentationAvg)
	}
}

// TestSchedConfigValidate rejects broken grids before any cell runs.
func TestSchedConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  SchedConfig
		want string
	}{
		{"bad shape", SchedConfig{Shapes: []string{"nonsense"}}, "shape"},
		{"bad tier", SchedConfig{RequiredTier: "closet"}, "tier"},
		{"negative churn", SchedConfig{Churn: -1}, "churn"},
		{"bad mode reaches RunSched", SchedConfig{}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.want == "" {
				if _, err := RunSched("round-robin", tc.cfg); err == nil ||
					!strings.Contains(err.Error(), "unknown sched mode") {
					t.Fatalf("unknown mode error = %v", err)
				}
				return
			}
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
